package schedule

import (
	"math"
	"testing"

	"loadmax/internal/job"
	"loadmax/internal/online"
)

func j(id int, r, p, d float64) job.Job {
	return job.Job{ID: id, Release: r, Proc: p, Deadline: d}
}

func TestNewPanicsOnZeroMachines(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) must panic")
		}
	}()
	New(0)
}

func TestAddAndAggregates(t *testing.T) {
	s := New(2)
	if err := s.Add(j(0, 0, 3, 10), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(j(1, 0, 2, 10), 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(j(2, 0, 1, 10), 0, 3); err != nil {
		t.Fatal(err)
	}
	if got := s.Load(); got != 6 {
		t.Errorf("Load = %g, want 6", got)
	}
	if got := s.Makespan(); got != 4 {
		t.Errorf("Makespan = %g, want 4", got)
	}
	if got := s.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
	ms := s.MachineSlots(0)
	if len(ms) != 2 || ms[0].Job.ID != 0 || ms[1].Job.ID != 2 {
		t.Errorf("MachineSlots(0) = %+v", ms)
	}
}

func TestAddMachineOutOfRange(t *testing.T) {
	s := New(2)
	if err := s.Add(j(0, 0, 1, 5), 2, 0); err == nil {
		t.Error("machine 2 of 2 must error")
	}
	if err := s.Add(j(0, 0, 1, 5), -1, 0); err == nil {
		t.Error("negative machine must error")
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	cases := []struct {
		name  string
		build func(*Schedule)
		nErr  int
	}{
		{"start before release", func(s *Schedule) {
			s.Add(j(0, 5, 1, 10), 0, 4)
		}, 1},
		{"completion after deadline", func(s *Schedule) {
			s.Add(j(0, 0, 5, 4), 0, 0)
		}, 1},
		{"overlap on machine", func(s *Schedule) {
			s.Add(j(0, 0, 5, 100), 0, 0)
			s.Add(j(1, 0, 5, 100), 0, 3)
		}, 1},
		{"ok back-to-back", func(s *Schedule) {
			s.Add(j(0, 0, 5, 100), 0, 0)
			s.Add(j(1, 0, 5, 100), 0, 5)
		}, 0},
		{"parallel machines no overlap", func(s *Schedule) {
			s.Add(j(0, 0, 5, 100), 0, 0)
			s.Add(j(1, 0, 5, 100), 1, 0)
		}, 0},
	}
	for _, c := range cases {
		s := New(2)
		c.build(s)
		errs := s.Verify()
		if len(errs) != c.nErr {
			t.Errorf("%s: %d violations (%v), want %d", c.name, len(errs), errs, c.nErr)
		}
		if s.Feasible() != (c.nErr == 0) {
			t.Errorf("%s: Feasible inconsistent with Verify", c.name)
		}
	}
}

func TestVerifyToleratesEpsilonOverlap(t *testing.T) {
	// A start within TimeEps of the previous end is back-to-back, not an
	// overlap — the tolerance-aware comparator at work.
	s := New(1)
	s.Add(j(0, 0, 1, 10), 0, 0)
	s.Add(j(1, 0, 1, 10), 0, 1-1e-13)
	if !s.Feasible() {
		t.Errorf("epsilon-scale overlap flagged: %v", s.Verify())
	}
}

func TestMachineLoadAt(t *testing.T) {
	s := New(2)
	s.Add(j(0, 0, 4, 100), 0, 0) // horizon 4
	s.Add(j(1, 0, 2, 100), 0, 4) // horizon 6
	if got := s.MachineLoadAt(0, 0); got != 6 {
		t.Errorf("load at 0 = %g, want 6", got)
	}
	if got := s.MachineLoadAt(0, 5); got != 1 {
		t.Errorf("load at 5 = %g, want 1", got)
	}
	if got := s.MachineLoadAt(0, 7); got != 0 {
		t.Errorf("load at 7 = %g, want 0", got)
	}
	if got := s.MachineLoadAt(1, 0); got != 0 {
		t.Errorf("idle machine load = %g, want 0", got)
	}
}

func TestFromDecisions(t *testing.T) {
	inst := job.Instance{j(0, 0, 2, 5), j(1, 1, 3, 10), j(2, 2, 1, 4)}
	decisions := []online.Decision{
		{JobID: 0, Accepted: true, Machine: 0, Start: 0},
		{JobID: 1, Accepted: true, Machine: 1, Start: 1},
		{JobID: 2, Accepted: false},
	}
	s, err := FromDecisions(2, inst, decisions)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || math.Abs(s.Load()-5) > 1e-12 {
		t.Errorf("Len=%d Load=%g", s.Len(), s.Load())
	}
	if !s.Feasible() {
		t.Errorf("violations: %v", s.Verify())
	}
	// Unknown job ID errors.
	if _, err := FromDecisions(2, inst, []online.Decision{{JobID: 42, Accepted: true}}); err == nil {
		t.Error("unknown job ID must error")
	}
	// Bad machine index errors.
	if _, err := FromDecisions(2, inst, []online.Decision{{JobID: 0, Accepted: true, Machine: 5}}); err == nil {
		t.Error("bad machine must error")
	}
}

func TestEmptySchedule(t *testing.T) {
	s := New(3)
	if s.Load() != 0 || s.Makespan() != 0 || !s.Feasible() {
		t.Error("empty schedule should be trivially feasible with zero load")
	}
}
