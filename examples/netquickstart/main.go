// Netquickstart: the serving stack end to end in one process — start a
// loadmax daemon on a loopback port, dial it, and push an adversarial
// stream over the wire. Every verdict a client receives is a binding
// commitment (accept = placement reserved forever, reject = job gone),
// so the example finishes with the proof that matters: the networked
// decision stream is bit-identical to a sequential replay through a
// lone Threshold engine.
package main

import (
	"fmt"
	"log"

	"loadmax"
)

func main() {
	// A sharded service with decision logs (so we can verify at the
	// end), fronted by the wire protocol on a kernel-picked port.
	svc, err := loadmax.NewShardedService(2, 8, 0.25, loadmax.WithServeDecisionLog())
	if err != nil {
		log.Fatal(err)
	}
	srv, err := loadmax.ServeNetwork(svc, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("daemon: %d shards × %d machines (ε=%g) on %s\n\n",
		svc.Shards(), svc.Machines(), svc.Eps(), srv.Addr())

	// Dial it like any remote client would. The handshake carries the
	// topology, so the client knows what it is talking to.
	cl, err := loadmax.Dial(srv.Addr().String(), loadmax.WithDialConns(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: connected, window %d requests in flight per connection\n\n", cl.Window())

	// The adversarial-echo family replays the paper's lower-bound
	// trick: batches of near-identical jobs whose deadlines echo the
	// threshold, built to make an online algorithm look as bad as its
	// guarantee allows.
	inst, ok := loadmax.Generate("adversarial-echo", loadmax.WorkloadSpec{
		N: 400, Eps: 0.25, M: 16, Load: 2.0, Seed: 1,
	})
	if !ok {
		log.Fatal("adversarial-echo family missing")
	}

	var accepted, rejected int
	var acceptedLoad float64
	for _, j := range inst {
		dec, err := cl.Submit(j)
		if err != nil {
			// loadmax.ErrShed (overload) and loadmax.ErrNetTimeout are
			// retryable — distinct from an algorithmic rejection, which
			// arrives as a normal decision with Accepted=false.
			log.Fatalf("job %d: %v", j.ID, err)
		}
		if dec.Accepted {
			accepted++
			acceptedLoad += j.Proc
		} else {
			rejected++
		}
	}
	fmt.Printf("adversarial stream: %d jobs over the wire → %d accepted (load %.4g), %d rejected\n",
		len(inst), accepted, acceptedLoad, rejected)

	// Shut down: drain the server, close the service, then replay every
	// shard's decision log through a fresh sequential engine. Bit-equal
	// placements and start times, or VerifyReplay returns the first
	// divergence — the wire added nothing and lost nothing.
	cl.Close()
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		log.Fatal(err)
	}
	if err := svc.VerifyReplay(); err != nil {
		log.Fatalf("replay diverged: %v", err)
	}
	fmt.Println("verify-replay: networked stream bit-identical to sequential replay ✓")
}
