// Ratiocurves: evaluate the tight competitive-ratio function c(ε,m) —
// the paper's Figure 1 — from the public API, including the phase
// structure and the closed-form checkpoints.
package main

import (
	"fmt"
	"log"
	"math"

	"loadmax"
)

func main() {
	fmt.Println("c(eps, m): tight competitive ratio for online load maximization")
	fmt.Println("           with slack eps and immediate commitment on m machines")
	fmt.Println()

	header := "   eps  |"
	for m := 1; m <= 4; m++ {
		header += fmt.Sprintf("    m=%d  ", m)
	}
	fmt.Println(header)
	fmt.Println("--------+------------------------------------")
	for _, eps := range []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0} {
		row := fmt.Sprintf("%7.3g |", eps)
		for m := 1; m <= 4; m++ {
			c, err := loadmax.Ratio(eps, m)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %7.3f ", c)
		}
		fmt.Println(row)
	}

	fmt.Println("\nphase transitions (the circles of Figure 1):")
	for m := 2; m <= 4; m++ {
		fmt.Printf("  m=%d: ", m)
		for k, corner := range loadmax.PhaseCorners(m) {
			c, _ := loadmax.Ratio(corner, m)
			fmt.Printf("eps_%d=%.4f (c=%.3f)  ", k+1, corner, c)
		}
		fmt.Println()
	}

	// Closed-form checkpoints from the paper.
	fmt.Println("\nclosed-form checkpoints:")
	c1, _ := loadmax.Ratio(0.5, 1)
	fmt.Printf("  c(0.5, 1) = %.6f  — 2 + 1/eps = %.6f (Goldwasser–Kerbikov)\n", c1, 2+1/0.5)
	c2, _ := loadmax.Ratio(0.5, 2)
	fmt.Printf("  c(0.5, 2) = %.6f  — 3/2 + 1/eps = %.6f (Eq. 1, second phase)\n", c2, 1.5+1/0.5)
	c3, _ := loadmax.Ratio(0.1, 2)
	fmt.Printf("  c(0.1, 2) = %.6f  — 2·sqrt(25/16 + 1/eps) + 1/2 = %.6f (Eq. 1, first phase)\n",
		c3, 2*math.Sqrt(25.0/16+10)+0.5)

	// Proposition 1: the m → ∞ limit.
	fmt.Println("\nProposition 1 (m → ∞):")
	eps := 0.001
	for _, m := range []int{1, 8, 64, 512} {
		c, _ := loadmax.Ratio(eps, m)
		fmt.Printf("  c(%g, %4d) = %7.3f   (ln(1/eps) = %.3f)\n", eps, m, c, math.Log(1/eps))
	}
}
