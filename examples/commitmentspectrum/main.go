// Commitmentspectrum: walk the commitment-model taxonomy of the paper's
// introduction on one hard instance. The same jobs flow through immediate
// commitment (Threshold and greedy), δ-delayed commitment, commitment on
// admission, and commitment with penalties — showing what each relaxation
// is worth, and that the paper's threshold rule recovers the trap inside
// the strictest model.
package main

import (
	"fmt"
	"log"

	"loadmax"
)

const (
	machines = 3
	slack    = 0.1
)

func main() {
	inst := trap()
	fmt.Printf("Trap instance (m=%d, eps=%g): %d tight unit jobs and one %.0f-unit job,\n",
		machines, slack, machines, 0.8/slack)
	fmt.Printf("all submitted at t=0 — accepting every unit job locks the long one out.\n\n")

	// Immediate commitment.
	thr, err := loadmax.NewScheduler(machines, slack)
	if err != nil {
		log.Fatal(err)
	}
	showImmediate("threshold (Algorithm 1)", thr, inst)
	showImmediate("greedy", loadmax.NewGreedy(machines), inst)

	// δ-delayed commitment.
	for _, delta := range []float64{slack / 2, slack} {
		d, err := loadmax.NewDelayedCommitment(machines, delta)
		if err != nil {
			log.Fatal(err)
		}
		res, err := loadmax.SimulateDeferred(d, inst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s load %5.2f  (decisions postponed to r + %.2g·p)\n",
			d.Name(), res.Load, delta)
	}

	// Commitment on admission.
	oa, err := loadmax.NewOnAdmissionCommitment(machines)
	if err != nil {
		log.Fatal(err)
	}
	res, err := loadmax.SimulateDeferred(oa, inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s load %5.2f  (commits only when a machine starts a job)\n",
		oa.Name(), res.Load)

	// Commitment with penalties.
	for _, rho := range []float64{0, 1, 10} {
		p, err := loadmax.NewPenalizedCommitment(machines, rho)
		if err != nil {
			log.Fatal(err)
		}
		pres, err := loadmax.SimulatePenalized(p, inst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s objective %5.2f  (completed %.2f − penalty %.2f, %d revoked)\n",
			p.Name(), pres.Objective, pres.CompletedLoad, pres.Penalty, pres.Revoked)
	}

	b := loadmax.OfflineBounds(inst, machines, 0)
	fmt.Printf("\nclairvoyant optimum: %.2f (exact=%v)\n", b.Upper, b.Exact)
	fmt.Println("\nlesson: weakening commitment helps greedy admission dodge the trap —")
	fmt.Println("but the threshold rule wins it inside the strictest model, without")
	fmt.Println("delays, pools, or revocation fees.")
}

// trap builds the canonical lower-bound pattern: m tight unit jobs plus a
// tight 0.8/eps job, all at t = 0.
func trap() loadmax.Instance {
	long := 0.8 / slack
	var inst loadmax.Instance
	for i := 0; i < machines; i++ {
		inst = append(inst, loadmax.Job{ID: i, Release: 0, Proc: 1, Deadline: 1 + slack})
	}
	inst = append(inst, loadmax.Job{
		ID: machines, Release: 0, Proc: long, Deadline: (1 + slack) * long,
	})
	return inst
}

func showImmediate(name string, s loadmax.Scheduler, inst loadmax.Instance) {
	res, err := loadmax.Simulate(s, inst)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Violations) > 0 {
		log.Fatalf("%s: %v", name, res.Violations)
	}
	fmt.Printf("%-24s load %5.2f  (immediate commitment)\n", name, res.Load)
}
