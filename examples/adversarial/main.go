// Adversarial: watch the Section-3 lower-bound adversary at work. It
// plays the three-phase game against greedy admission (which pays the
// single-machine price 2 + 1/ε despite having m machines) and against
// Algorithm 1 (which meets the tight multi-machine bound c(ε,m)).
package main

import (
	"fmt"
	"log"

	"loadmax"
)

func main() {
	const m = 4
	for _, eps := range []float64{0.02, 0.1, 0.4} {
		c, err := loadmax.Ratio(eps, m)
		if err != nil {
			log.Fatal(err)
		}
		params, _ := loadmax.SolveRatio(eps, m)
		fmt.Printf("=== m=%d, eps=%g (phase k=%d) — tight bound c = %.3f ===\n",
			m, eps, params.K, c)

		thr, err := loadmax.NewScheduler(m, eps)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range []loadmax.Scheduler{thr, loadmax.NewGreedy(m)} {
			out, err := loadmax.Adversary(s, eps, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s: %2d jobs submitted, ALG load %8.3f, OPT load %8.3f → ratio %7.3f",
				s.Name(), len(out.Steps), out.ALGLoad, out.OPTLoad, out.Ratio)
			switch {
			case out.Ratio < c*1.001:
				fmt.Printf("   (meets the bound exactly)\n")
			default:
				fmt.Printf("   (%.2fx worse than necessary)\n", out.Ratio/c)
			}
		}

		// The single-machine greedy price for comparison: 2 + 1/eps.
		fmt.Printf("%-12s: single-machine optimum 2 + 1/eps = %.3f — greedy gains nothing from %d machines\n\n",
			"(reference)", 2+1/eps, m)
	}

	fmt.Println("Deep dive at eps=0.1: the game trace against Algorithm 1")
	thr, _ := loadmax.NewScheduler(m, 0.1)
	out, err := loadmax.Adversary(thr, 0.1, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i, st := range out.Steps {
		verdict := "reject"
		if st.Decision.Accepted {
			verdict = fmt.Sprintf("accept → M%d @ t=%.3g", st.Decision.Machine, st.Decision.Start)
		}
		fmt.Printf("  step %2d  phase %d.%d  job(p=%7.4f, d=%8.4f)  %s\n",
			i+1, st.Phase, st.Subphase, st.Job.Proc, st.Job.Deadline, verdict)
	}
	fmt.Printf("phases ended at u=%d, h=%d; realized ratio %.4f\n", out.U, out.H, out.Ratio)
}
