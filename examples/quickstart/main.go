// Quickstart: submit a handful of jobs to Algorithm 1 and inspect the
// decisions — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"loadmax"
)

func main() {
	// Four machines, every job promises slack ε = 0.25:
	// deadline ≥ 1.25 × processing time after release.
	sched, err := loadmax.NewScheduler(4, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Algorithm 1 on %d machines, guarantee: ratio ≤ %.3f\n\n",
		sched.Machines(), sched.Guarantee())

	jobs := []loadmax.Job{
		{ID: 1, Release: 0, Proc: 4, Deadline: 5},     // tight but machines are empty
		{ID: 2, Release: 0, Proc: 2, Deadline: 9},     // loose
		{ID: 3, Release: 1, Proc: 6, Deadline: 8.5},   // tight-ish
		{ID: 4, Release: 2, Proc: 1, Deadline: 3.3},   // short, tight
		{ID: 5, Release: 2, Proc: 8, Deadline: 12.5},  // long
		{ID: 6, Release: 3, Proc: 0.5, Deadline: 3.7}, // very short — may hit the threshold
	}
	var accepted float64
	for _, j := range jobs {
		dec := sched.Submit(j)
		if dec.Accepted {
			accepted += j.Proc
			fmt.Printf("  %-28v → machine %d, runs [%.4g, %.4g)\n",
				j, dec.Machine, dec.Start, dec.Start+j.Proc)
		} else {
			fmt.Printf("  %-28v → rejected (deadline below admission threshold)\n", j)
		}
	}
	fmt.Printf("\naccepted load: %.4g of %.4g submitted\n", accepted, totalProc(jobs))

	// The same decisions are irrevocable: there is no API to revisit them.
	// Verify the committed schedule end to end with the simulator instead,
	// and attach a decision trace so every verdict comes with its math:
	inst := loadmax.Instance(jobs)
	trace := &loadmax.MemoryTrace{}
	res, err := loadmax.Simulate(sched, inst, loadmax.WithSimTrace(trace))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified replay: %d accepted, load %.4g, violations: %d\n",
		res.Accepted, res.Load, len(res.Violations))

	// Each DecisionEvent explains one Submit: the admission threshold
	// d_lim = max_h (t + l(m_h)·f_h) over the sorted machine loads
	// (Eq. 9–10), and the verdict d ≥ d_lim. A rejection is never
	// arbitrary — the trace shows exactly which term beat the deadline.
	fmt.Println("\nwhy each decision went the way it did:")
	for _, ev := range trace.Events() {
		fmt.Printf("  t=%-4g J%d (d=%g): d_lim=%.4g", ev.T, ev.JobID, ev.Deadline, ev.DLim)
		if ev.ArgMaxH > 0 {
			fmt.Printf(" from h=%d (load %.4g · f=%.3g)", ev.ArgMaxH,
				ev.Terms[ev.ArgMaxH-ev.K].Load, ev.Terms[ev.ArgMaxH-ev.K].F)
		}
		if ev.Accepted {
			fmt.Printf(" ≤ d → accept on machine %d at t=%.4g\n", ev.Machine, ev.Start)
		} else {
			fmt.Printf(" > d → reject (%s)\n", ev.Reason)
		}
	}

	// How good is that against a clairvoyant scheduler?
	b := loadmax.OfflineBounds(inst, 4, 0)
	fmt.Printf("offline optimum: %.4g (exact=%v) → measured ratio %.3f\n",
		b.Upper, b.Exact, b.Upper/res.Load)
}

func totalProc(jobs []loadmax.Job) float64 {
	var s float64
	for _, j := range jobs {
		s += j.Proc
	}
	return s
}
