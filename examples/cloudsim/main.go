// Cloudsim: the paper's motivating IaaS scenario. A provider rents out a
// small cluster; customers submit deadline-bound reservations (routine
// batch work, time-sensitive analytics, rare huge training runs). The
// provider must answer every request immediately and irrevocably — the
// binding-agreement property of §1 — and wants to maximize billed
// machine-time (load).
//
// The simulation compares Algorithm 1 against greedy admission across a
// day of diurnal traffic plus a bimodal stress burst, and reports billed
// load, acceptance rates per class, and the measured ratio against the
// clairvoyant optimum bound.
package main

import (
	"fmt"
	"log"
	"sort"

	"loadmax"
)

const (
	machines = 8
	slack    = 0.2 // contractual slack: deadline ≥ 1.2 × duration
)

func main() {
	inst := buildDay(4242)
	fmt.Printf("IaaS day: %d requests on %d machines, offered load %.0f machine-hours\n\n",
		len(inst), machines, inst.TotalLoad())

	thr, err := loadmax.NewScheduler(machines, slack)
	if err != nil {
		log.Fatal(err)
	}
	schedulers := []loadmax.Scheduler{thr, loadmax.NewGreedy(machines)}

	for _, s := range schedulers {
		res, err := loadmax.Simulate(s, inst)
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Violations) > 0 {
			log.Fatalf("%s violated commitments: %v", s.Name(), res.Violations)
		}
		fmt.Printf("%-12s billed %.0f machine-hours (%.1f%% of offered), accepted %d/%d requests\n",
			s.Name(), res.Load, 100*res.LoadFraction(), res.Accepted, res.Submitted)
		reportClasses(inst, res)
		fmt.Println()
	}

	b := loadmax.OfflineBounds(inst, machines, 0)
	fmt.Printf("clairvoyant optimum ≤ %.0f machine-hours (%s)\n", b.Upper, boundKind(b))
	c, _ := loadmax.Ratio(slack, machines)
	fmt.Printf("worst-case guarantee for Algorithm 1 at eps=%.2g, m=%d: ratio ≤ %.2f\n", slack, machines, c)
}

// reportClasses breaks acceptance down by request size class.
func reportClasses(inst loadmax.Instance, res *loadmax.Result) {
	type cls struct {
		name   string
		lo, hi float64
	}
	classes := []cls{
		{"  small  (< 2h)", 0, 2},
		{"  medium (2–8h)", 2, 8},
		{"  large  (≥ 8h)", 8, 1e18},
	}
	accepted := map[int]bool{}
	for _, d := range res.Decisions {
		if d.Accepted {
			accepted[d.JobID] = true
		}
	}
	for _, c := range classes {
		var tot, acc int
		for _, j := range inst {
			if j.Proc >= c.lo && j.Proc < c.hi {
				tot++
				if accepted[j.ID] {
					acc++
				}
			}
		}
		if tot > 0 {
			fmt.Printf("%s: %d/%d accepted\n", c.name, acc, tot)
		}
	}
}

// buildDay merges diurnal background traffic with a bimodal burst at
// mid-day — short interactive jobs competing with huge training runs.
func buildDay(seed int64) loadmax.Instance {
	diurnal, _ := loadmax.Generate("diurnal", loadmax.WorkloadSpec{
		N: 400, Eps: slack, M: machines, Load: 1.4, Seed: seed,
	})
	burst, _ := loadmax.Generate("bimodal", loadmax.WorkloadSpec{
		N: 120, Eps: slack, M: machines, Load: 2.5, Seed: seed + 1,
	})
	// Shift the burst into the afternoon.
	for i := range burst {
		burst[i].Release += 60
		burst[i].Deadline += 60
	}
	merged := append(diurnal, burst...)
	sort.SliceStable(merged, func(a, b int) bool { return merged[a].Release < merged[b].Release })
	for i := range merged {
		merged[i].ID = i
	}
	return merged
}

func boundKind(b loadmax.Bounds) string {
	if b.Exact {
		return "exact"
	}
	return "flow-relaxation bound"
}
