package loadmax

import (
	"math"
	"testing"
)

// The facade tests exercise the public API exactly as a downstream user
// would; the heavy lifting is tested in the internal packages.

func TestQuickstartFlow(t *testing.T) {
	sched, err := NewScheduler(4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	dec := sched.Submit(Job{ID: 1, Release: 0, Proc: 3, Deadline: 4})
	if !dec.Accepted {
		t.Fatal("first job on an empty system must be accepted")
	}
	if dec.Start != 0 {
		t.Errorf("start = %g, want 0", dec.Start)
	}
}

func TestRatioFacade(t *testing.T) {
	c, err := Ratio(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-3.5) > 1e-9 { // Eq. (1): 3/2 + 1/0.5
		t.Errorf("Ratio(0.5,2) = %g, want 3.5", c)
	}
	if _, err := Ratio(0, 2); err == nil {
		t.Error("eps=0 must error")
	}
	p, err := SolveRatio(0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.K < 1 || p.K > 3 || p.C <= 1 {
		t.Errorf("implausible params %+v", p)
	}
	if got := len(PhaseCorners(4)); got != 3 {
		t.Errorf("PhaseCorners(4) has %d entries, want 3", got)
	}
}

func TestSimulateAndBounds(t *testing.T) {
	inst, ok := Generate("poisson", WorkloadSpec{N: 12, Eps: 0.2, M: 2, Seed: 7})
	if !ok {
		t.Fatal("poisson family missing")
	}
	sched, err := NewScheduler(2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sched, inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	b := OfflineBounds(inst, 2, 0)
	if !b.Exact {
		t.Fatal("n=12 should be solved exactly")
	}
	if res.Load > b.Upper+1e-9 {
		t.Errorf("online load %g exceeds offline optimum %g", res.Load, b.Upper)
	}
	guar := mustRatioParams(t, 0.2, 2).UpperBoundValue()
	if res.Load > 0 && b.Upper/res.Load > guar+1e-9 {
		t.Errorf("measured ratio %g exceeds guarantee %g", b.Upper/res.Load, guar)
	}
}

func mustRatioParams(t *testing.T, eps float64, m int) RatioParams {
	t.Helper()
	p, err := SolveRatio(eps, m)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAdversaryFacade(t *testing.T) {
	sched, err := NewScheduler(3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Adversary(sched, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := Ratio(0.2, 3)
	if math.Abs(out.Ratio-c) > 1e-3*c {
		t.Errorf("adversary ratio %g, want ≈ c = %g", out.Ratio, c)
	}
}

func TestRandomizedFacade(t *testing.T) {
	s, err := NewRandomizedSingleMachine(0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	if s.Machines() != 1 {
		t.Errorf("physical machines = %d, want 1", s.Machines())
	}
	inst, _ := Generate("uniform", WorkloadSpec{N: 50, Eps: 0.05, Seed: 3})
	res, err := Simulate(s, inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestWorkloadFamiliesComplete(t *testing.T) {
	want := []string{"uniform", "poisson", "pareto", "bimodal", "tight-slack", "diurnal", "adversarial-echo"}
	got := WorkloadFamilies()
	if len(got) != len(want) {
		t.Fatalf("families = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("family[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if _, ok := Generate("no-such-family", WorkloadSpec{N: 1, Eps: 0.5}); ok {
		t.Error("unknown family must return ok=false")
	}
}

func TestCommitmentFacades(t *testing.T) {
	inst, _ := Generate("bimodal", WorkloadSpec{N: 40, Eps: 0.1, M: 2, Seed: 9})

	d, err := NewDelayedCommitment(2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := SimulateDeferred(d, inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(rd.Violations) != 0 {
		t.Fatalf("delayed violations: %v", rd.Violations)
	}

	oa, err := NewOnAdmissionCommitment(2)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := SimulateDeferred(oa, inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(ro.Violations) != 0 {
		t.Fatalf("on-admission violations: %v", ro.Violations)
	}

	p, err := NewPenalizedCommitment(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := SimulatePenalized(p, inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Violations) != 0 {
		t.Fatalf("penalized violations: %v", rp.Violations)
	}
	if rp.Objective > rp.CompletedLoad {
		t.Errorf("objective %g above completed load %g", rp.Objective, rp.CompletedLoad)
	}
}

func TestSchedulerWithPolicyFacade(t *testing.T) {
	s, err := NewSchedulerWithPolicy(3, 0.2, LeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	inst, _ := Generate("uniform", WorkloadSpec{N: 30, Eps: 0.2, M: 3, Seed: 2})
	res, err := Simulate(s, inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if _, err := NewSchedulerWithPolicy(0, 0.2, FirstFit); err == nil {
		t.Error("m=0 must error")
	}
}

func TestGreedyFacadeEpsAbove1(t *testing.T) {
	// Footnote 2: greedy works for ε > 1 where NewScheduler refuses.
	if _, err := NewScheduler(2, 1.5); err == nil {
		t.Error("Threshold must reject eps > 1")
	}
	g := NewGreedy(2)
	inst, _ := Generate("uniform", WorkloadSpec{N: 30, Eps: 1.5, Seed: 5})
	res, err := Simulate(g, inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestShardedServiceFacade(t *testing.T) {
	svc, err := NewShardedService(4, 8, 0.1,
		WithServePolicy(HashByIDRouter()),
		WithServeQueueDepth(64),
		WithServeBatchSize(8),
		WithServeDecisionLog())
	if err != nil {
		t.Fatal(err)
	}
	inst, _ := Generate("poisson", WorkloadSpec{N: 400, Eps: 0.1, M: 8, Seed: 11})
	accepted := int64(0)
	for _, j := range inst {
		dec, err := svc.Submit(j)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Accepted {
			accepted++
		}
	}
	snaps := svc.Snapshot()
	if len(snaps) != 4 {
		t.Fatalf("snapshot has %d shards, want 4", len(snaps))
	}
	var total int64
	for _, s := range snaps {
		total += s.Accepted
	}
	if total != accepted {
		t.Errorf("snapshot accepted %d, caller counted %d", total, accepted)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.VerifyReplay(); err != nil {
		t.Fatalf("sharded decisions diverge from sequential replay: %v", err)
	}
	if _, err := svc.Submit(inst[0]); err != ErrServeClosed {
		t.Errorf("Submit after Close = %v, want ErrServeClosed", err)
	}
	if _, err := NewShardedService(0, 8, 0.1); err == nil {
		t.Error("0 shards must error")
	}
}

func TestAnalyzeFacade(t *testing.T) {
	inst, _ := Generate("bimodal", WorkloadSpec{N: 50, Eps: 0.1, M: 2, Seed: 4})
	sched, err := NewScheduler(2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sched, inst)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(inst, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted+rep.CapacityRejections+rep.PolicyRejections != len(inst) {
		t.Error("diagnostic classes do not partition the instance")
	}
}
