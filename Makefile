GO ?= go

.PHONY: all build test race bench bench-submit bench-submit-smoke bench-serve bench-serve-smoke verify fmt vet experiments clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-submit runs the reproducible Submit-latency sweep (naive vs
# incremental engine, m up to 4096) and writes BENCH_submit.json; see
# EXPERIMENTS.md for the schema. -check lockstep-verifies that both
# engines make bit-identical decisions before anything is timed.
bench-submit:
	$(GO) run ./cmd/bench -check -out BENCH_submit.json

# bench-submit-smoke is the CI gate for the runner: small m, full
# equivalence check, no regression threshold (it fails on build errors,
# panics, or an engine divergence — not on noisy timings).
bench-submit-smoke:
	$(GO) run ./cmd/bench -quick -check -out -

# bench-serve runs the sharded serving-layer throughput sweep (shard
# count × GOMAXPROCS through internal/serve) and writes BENCH_serve.json;
# see EXPERIMENTS.md for the schema. -check proves every shard's decision
# stream bit-identical to a sequential replay before anything is timed.
bench-serve:
	$(GO) run ./cmd/bench -mode serve -check -out BENCH_serve.json

# bench-serve-smoke is the CI gate for the serving layer: 1–2 shards,
# small n, equivalence check forced on. It fails on build errors, panics,
# or a shard-stream/sequential-replay divergence — never on timing noise.
bench-serve-smoke:
	$(GO) run ./cmd/bench -mode serve -quick -check -out -

# verify is the CI gate: formatting, static checks, a full build and the
# race-enabled test suite (which includes the zero-alloc observability
# guard in bench_obs_test.go).
verify: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

experiments:
	$(GO) run ./cmd/experiments -quick

clean:
	$(GO) clean ./...
	rm -f *.pprof
