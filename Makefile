GO ?= go

.PHONY: all build test race bench bench-submit bench-submit-smoke bench-serve bench-serve-smoke bench-recover bench-recover-smoke crash-smoke fuzz-smoke verify fmt vet experiments clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-submit runs the reproducible Submit-latency sweep (naive vs
# incremental engine, m up to 4096) and writes BENCH_submit.json; see
# EXPERIMENTS.md for the schema. -check lockstep-verifies that both
# engines make bit-identical decisions before anything is timed.
bench-submit:
	$(GO) run ./cmd/bench -check -out BENCH_submit.json

# bench-submit-smoke is the CI gate for the runner: small m, full
# equivalence check, no regression threshold (it fails on build errors,
# panics, or an engine divergence — not on noisy timings).
bench-submit-smoke:
	$(GO) run ./cmd/bench -quick -check -out -

# bench-serve runs the sharded serving-layer throughput sweep (shard
# count × GOMAXPROCS through internal/serve) and writes BENCH_serve.json;
# see EXPERIMENTS.md for the schema. -check proves every shard's decision
# stream bit-identical to a sequential replay before anything is timed.
bench-serve:
	$(GO) run ./cmd/bench -mode serve -check -out BENCH_serve.json

# bench-serve-smoke is the CI gate for the serving layer: 1–2 shards,
# small n, equivalence check forced on. It fails on build errors, panics,
# or a shard-stream/sequential-replay divergence — never on timing noise.
bench-serve-smoke:
	$(GO) run ./cmd/bench -mode serve -quick -check -out -

# bench-recover runs the crash-recovery sweep (commitment-log length ×
# mid-stream checkpointing through serve.Restore) and writes
# BENCH_recover.json; see EXPERIMENTS.md §E16 for the schema. -check
# additionally proves every restored service bit-identical to a
# sequential replay (VerifyReplay).
bench-recover:
	$(GO) run ./cmd/bench -mode recover -check -out BENCH_recover.json

# bench-recover-smoke is the CI gate for durability: short logs, replay
# verification forced on. It fails on build errors, panics, or a
# recovered-state/replay divergence — never on timing noise.
bench-recover-smoke:
	$(GO) run ./cmd/bench -mode recover -quick -check -out -

# crash-smoke runs the deterministic crash-fault matrix under the race
# detector: the WAL writer is killed at each of the six kill points
# (including torn mid-fsync writes) and the recovered service must honor
# every acknowledged decision and decide the remaining stream
# bit-identically. Deterministic by construction — no timing dependence.
crash-smoke:
	$(GO) test -race -run 'TestCrash' ./internal/serve/ ./internal/wal/

# fuzz-smoke gives each fuzz target a short coverage-guided run (the
# committed seed corpora already run on every plain `go test`). Fixed
# seeds live in f.Add and testdata/fuzz; the budget is small enough for
# CI but has already caught real bugs (a negative-Load Spec once drove
# release dates negative and panicked the generator finalizer).
fuzz-smoke:
	$(GO) test -race -run '^$$' -fuzz 'FuzzSlackBoundary' -fuzztime 10s ./internal/job/
	$(GO) test -race -run '^$$' -fuzz 'FuzzGenerators' -fuzztime 10s ./internal/workload/

# verify is the CI gate: formatting, static checks, a full build and the
# race-enabled test suite (which includes the zero-alloc observability
# guard in bench_obs_test.go).
verify: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

experiments:
	$(GO) run ./cmd/experiments -quick

clean:
	$(GO) clean ./...
	rm -f *.pprof
