GO ?= go

# Pinned so CI and local runs agree on the diagnostic set. 2024.1.1 is
# the last line that supports the go.mod Go version; bump both together.
STATICCHECK_VERSION ?= 2024.1.1

.PHONY: all build test race race-multicore bench bench-submit bench-submit-smoke bench-serve bench-serve-smoke bench-recover bench-recover-smoke bench-net bench-net-smoke bench-batch bench-batch-smoke bench-trace bench-trace-smoke bench-scale bench-scale-smoke bench-arena bench-arena-smoke bench-cluster bench-cluster-smoke net-smoke gateway-smoke obs-smoke crash-smoke fuzz-smoke verify fmt vet staticcheck experiments clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-multicore re-runs the race suite with scheduler parallelism
# forced to 4, regardless of the host's core count: striped counters,
# the swap-drain shard queues and the pooled frame buffers only
# interleave interestingly when goroutines actually preempt each other.
# The second invocation re-runs the policy-equivalence matrix (every
# registered admission policy through concurrent serve + kill/restore +
# WAL state round-trips) on its own, so a policy-specific interleaving
# bug fails with a policy-named test rather than somewhere in the bulk
# suite.
race-multicore:
	GOMAXPROCS=4 $(GO) test -race -count=1 ./...
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'TestServePolicyMatrix|TestPolicyMatrixKillRestore|TestPolicyStateRoundTrip|TestPolicyDeterminism' ./internal/serve/ ./internal/policy/
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'TestGateway|TestRoutingDeterminism|TestMirror|TestDrain' ./internal/gateway/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-submit runs the reproducible Submit-latency sweep (naive vs
# incremental engine, m up to 4096) and writes BENCH_submit.json; see
# EXPERIMENTS.md for the schema. -check lockstep-verifies that both
# engines make bit-identical decisions before anything is timed.
bench-submit:
	$(GO) run ./cmd/bench -check -out BENCH_submit.json

# bench-submit-smoke is the CI gate for the runner: small m, full
# equivalence check, no regression threshold (it fails on build errors,
# panics, or an engine divergence — not on noisy timings).
bench-submit-smoke:
	$(GO) run ./cmd/bench -quick -check -out -

# bench-serve runs the sharded serving-layer throughput sweep (shard
# count × GOMAXPROCS through internal/serve) and writes BENCH_serve.json;
# see EXPERIMENTS.md for the schema. -check proves every shard's decision
# stream bit-identical to a sequential replay before anything is timed.
bench-serve:
	$(GO) run ./cmd/bench -mode serve -check -out BENCH_serve.json

# bench-serve-smoke is the CI gate for the serving layer: 1–2 shards,
# small n, equivalence check forced on. It fails on build errors, panics,
# or a shard-stream/sequential-replay divergence — never on timing noise.
bench-serve-smoke:
	$(GO) run ./cmd/bench -mode serve -quick -check -out -

# bench-recover runs the crash-recovery sweep (commitment-log length ×
# mid-stream checkpointing through serve.Restore) and writes
# BENCH_recover.json; see EXPERIMENTS.md §E16 for the schema. -check
# additionally proves every restored service bit-identical to a
# sequential replay (VerifyReplay).
bench-recover:
	$(GO) run ./cmd/bench -mode recover -check -out BENCH_recover.json

# bench-recover-smoke is the CI gate for durability: short logs, replay
# verification forced on. It fails on build errors, panics, or a
# recovered-state/replay divergence — never on timing noise.
bench-recover-smoke:
	$(GO) run ./cmd/bench -mode recover -quick -check -out -

# bench-net runs the network-serving sweep (client count × pipelining
# depth against an in-process daemon on a loopback port) and writes
# BENCH_net.json; see EXPERIMENTS.md §E17 for the schema. -check proves
# every sweep point's networked decision stream bit-identical to a
# sequential replay before anything is timed.
bench-net:
	$(GO) run ./cmd/bench -mode net -check -out BENCH_net.json

# bench-net-smoke is the CI gate for the wire path: 1–2 clients, small
# n, replay verification forced on. It fails on build errors, panics,
# or a networked-stream/sequential-replay divergence — never on timing.
bench-net-smoke:
	$(GO) run ./cmd/bench -mode net -quick -check -out -

# bench-batch runs the batched-admission sweep (client count × jobs per
# submit-batch frame, against the per-job baseline at the same client
# count) and writes BENCH_batch.json; see EXPERIMENTS.md §E19 for the
# schema. -check proves every batched sweep point — span tracing on —
# bit-identical to a sequential replay before anything is timed.
bench-batch:
	$(GO) run ./cmd/bench -mode batch -check -out BENCH_batch.json

# bench-batch-smoke is the CI gate for the batched path: 1–2 clients,
# two batch sizes, small n, replay verification forced on. It fails on
# build errors, panics, or a batched-stream/sequential-replay
# divergence — never on throughput numbers, which are timing.
bench-batch-smoke:
	$(GO) run ./cmd/bench -mode batch -quick -check -out -

# bench-trace measures request-lifecycle tracing overhead on the
# daemon's Submit surface (netserve RPC over loopback, headline) and on
# the raw in-process Submit path (engine section), and writes
# BENCH_trace.json; see EXPERIMENTS.md §E18 for the schema. -check
# proves both traced configurations replay bit-identically first.
bench-trace:
	$(GO) run ./cmd/bench -mode trace -check -out BENCH_trace.json

# bench-trace-smoke is the CI gate for tracing: small n, one round,
# replay verification forced on for both the in-process and networked
# traced paths. It fails on build errors, panics, or a traced-stream
# divergence — never on overhead numbers, which are timing.
bench-trace-smoke:
	$(GO) run ./cmd/bench -mode trace -quick -check -out -

# bench-scale runs the multi-core scaling sweep (serve/net/batch
# surfaces × GOMAXPROCS × shard count) and writes BENCH_scale.json; see
# EXPERIMENTS.md §E20 for the schema. Replay verification is hardwired
# on at every point, and the run aborts unless the untraced Submit hot
# path measures 0 allocs/op.
bench-scale:
	$(GO) run ./cmd/bench -mode scale -out BENCH_scale.json

# bench-scale-smoke is the CI gate for the scaling sweep: GOMAXPROCS
# {1,2}, 1–2 shards, small n, replay verification at every point plus
# the 0-alloc Submit gate. It fails on build errors, panics, a
# decision-stream divergence, or an allocating hot path — never on the
# scaling numbers, which are timing.
bench-scale-smoke:
	$(GO) run ./cmd/bench -mode scale -quick -out -

# bench-arena races every registered admission policy (Threshold, the
# δ-commitment grid, the greedy baseline) over the Section 3 adversary
# at an ε grid and over every workload family, and writes
# BENCH_arena.json; see EXPERIMENTS.md §E21 for the schema. -check
# lockstep-verifies each policy decides deterministically on every
# workload stream before its curve is reported.
bench-arena:
	$(GO) run ./cmd/bench -mode arena -check -out BENCH_arena.json

# bench-arena-smoke is the CI gate for the policy arena: small n, a
# two-point ε grid, determinism check forced on. It fails on build
# errors, panics, an adversary protocol violation (an infeasible
# commitment is a policy bug), or a nondeterministic policy — never on
# the competitive-ratio numbers, which are exact model outputs anyway.
bench-arena-smoke:
	$(GO) run ./cmd/bench -mode arena -quick -check -out -

# bench-cluster runs the gateway-tier sweep (backend groups × wire
# clients, with a kill -9 of group 0's primary mid-burst at every
# point) and writes BENCH_cluster.json; see EXPERIMENTS.md §E22 for the
# schema. Replay verification is hardwired on: every point must fail
# over with zero acknowledged-verdict loss and pass the merged
# per-backend replay proof (gateway.VerifyMergedReplay).
bench-cluster:
	$(GO) run ./cmd/bench -mode cluster -out BENCH_cluster.json

# bench-cluster-smoke is the CI gate for the cluster tier: 1–2 groups,
# 1–2 clients, small n, the mid-burst kill and the merged replay proof
# at every point. It fails on build errors, panics, a lost or altered
# acknowledged verdict, or a stream divergence — never on throughput
# or latency numbers, which are timing.
bench-cluster-smoke:
	$(GO) run ./cmd/bench -mode cluster -quick -out -

# gateway-smoke is the failover gate: the gateway suite under the race
# detector — concurrent submitters, a kill -9 (Server.Abort) of a
# primary mid-burst, standby promotion with the mirror queue flushed
# first, and the merged per-backend decision streams proven
# bit-identical by policy-generic replay with zero acked-verdict loss.
# Plus the routing-determinism table (every router × admission policy:
# gateway submission ≡ direct per-backend submission), mirror-lag
# shedding, and the drain path. Outcomes are deterministic; nothing
# asserts on wall-clock timing.
gateway-smoke:
	$(GO) test -race -count=1 ./internal/gateway/

# obs-smoke is the ops-plane gate: build loadmaxd + loadmaxctl, start a
# traced daemon with the admin listener, scrape /metrics and /statusz
# through the CLI, assert the required series and status fields are
# present, then SIGTERM and require a clean drain. Structural asserts
# only — no timing.
obs-smoke:
	sh scripts/obs_smoke.sh

# net-smoke is the daemon integration gate: the netserve suite under the
# race detector — N concurrent pipelining clients against a live TCP
# daemon, overload shedding, verdict timeouts, slow-client disconnects,
# graceful drain, and the kill-and-Restore replay proof. Outcomes are
# deterministic (gated admission, net.Pipe clients); nothing asserts on
# wall-clock timing.
net-smoke:
	$(GO) test -race -count=1 -run 'TestNet' ./internal/netserve/

# crash-smoke runs the deterministic crash-fault matrix under the race
# detector: the WAL writer is killed at each of the six kill points
# (including torn mid-fsync writes) and the recovered service must honor
# every acknowledged decision and decide the remaining stream
# bit-identically. Deterministic by construction — no timing dependence.
crash-smoke:
	$(GO) test -race -run 'TestCrash' ./internal/serve/ ./internal/wal/

# fuzz-smoke gives each fuzz target a short coverage-guided run (the
# committed seed corpora already run on every plain `go test`). Fixed
# seeds live in f.Add and testdata/fuzz; the budget is small enough for
# CI but has already caught real bugs (a negative-Load Spec once drove
# release dates negative and panicked the generator finalizer).
fuzz-smoke:
	$(GO) test -race -run '^$$' -fuzz 'FuzzSlackBoundary' -fuzztime 10s ./internal/job/
	$(GO) test -race -run '^$$' -fuzz 'FuzzGenerators' -fuzztime 10s ./internal/workload/

# verify is the CI gate: formatting, static checks, a full build and the
# race-enabled test suite (which includes the zero-alloc observability
# guard in bench_obs_test.go).
verify: fmt vet staticcheck build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck runs the pinned honnef.co linter when the binary is on
# PATH and degrades to a notice when it is not (the repo adds no module
# dependencies, so the tool is never fetched implicitly). CI installs
# the pinned version explicitly.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI pins $(STATICCHECK_VERSION))"; \
	fi

experiments:
	$(GO) run ./cmd/experiments -quick

clean:
	$(GO) clean ./...
	rm -f *.pprof
