GO ?= go

.PHONY: all build test race bench verify fmt vet experiments clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# verify is the CI gate: formatting, static checks, a full build and the
# race-enabled test suite (which includes the zero-alloc observability
# guard in bench_obs_test.go).
verify: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

experiments:
	$(GO) run ./cmd/experiments -quick

clean:
	$(GO) clean ./...
	rm -f *.pprof
