package loadmax

// One benchmark per reproduced paper artifact (tables/figures — see
// DESIGN.md §4), each driving the corresponding experiment end to end in
// Quick mode, plus microbenchmarks of the hot paths. Regenerate the full
// artifacts with: go run ./cmd/experiments
import (
	"testing"

	"loadmax/internal/core"
	"loadmax/internal/experiments"
	"loadmax/internal/ratio"
	"loadmax/internal/sim"
	"loadmax/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	d, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Run(experiments.Options{Quick: true, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1_Fig1Curves regenerates the Figure-1 curve data (c(ε,m) for
// m = 1..4 with phase-transition circles).
func BenchmarkE1_Fig1Curves(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2_ClosedForms validates Equation (1) and the last-three-phase
// exact terms against the numeric recursion.
func BenchmarkE2_ClosedForms(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3_DecisionTree regenerates the Figure-2/3 decision tree and
// schedules for m = 3.
func BenchmarkE3_DecisionTree(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4_LowerBound plays the Theorem-1 adversary across the (ε,m)
// grid against Threshold and greedy.
func BenchmarkE4_LowerBound(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5_UpperBound validates the Theorem-2 guarantee on random
// workloads against exact/bounded OPT.
func BenchmarkE5_UpperBound(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6_LnLimit sweeps m for the Proposition-1 limit ln(1/ε).
func BenchmarkE6_LnLimit(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7_Randomized measures the Corollary-1 classify-and-select
// algorithm against the deterministic-killer instance.
func BenchmarkE7_Randomized(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8_Baselines compares Threshold with the §1.2 related-work
// baselines under the adaptive adversary and random workloads.
func BenchmarkE8_Baselines(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9_Ablations runs the allocation-policy / phase-override /
// footnote-2 ablations.
func BenchmarkE9_Ablations(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10_Commitment measures the price-of-commitment spectrum
// (immediate / delayed / on-admission / preemptive / migration).
func BenchmarkE10_Commitment(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11_Weighted runs the general-weights impossibility sweep.
func BenchmarkE11_Weighted(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12_Penalties sweeps the revocation fine of the
// commitment-with-penalties model.
func BenchmarkE12_Penalties(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13_WorstCaseHunt random-searches for Theorem-2
// counterexamples against exact OPT.
func BenchmarkE13_WorstCaseHunt(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14_Performance measures decision latency and simulation
// throughput across machine counts.
func BenchmarkE14_Performance(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15_UnitJobs validates the no-slack equal-length regime
// (Baruah trap, Ding et al. parallel limit).
func BenchmarkE15_UnitJobs(b *testing.B) { benchExperiment(b, "E15") }

// --- Microbenchmarks -------------------------------------------------------

// BenchmarkSubmit measures the per-job admission decision (sort + threshold
// + best fit) on a loaded 8-machine system.
func BenchmarkSubmit(b *testing.B) {
	inst := workload.Poisson(workload.Spec{N: 10000, Eps: 0.1, M: 8, Seed: 42})
	th, err := core.New(8, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Submit(inst[i%len(inst)])
		if (i+1)%len(inst) == 0 {
			b.StopTimer()
			th.Reset()
			b.StartTimer()
		}
	}
}

// BenchmarkSimulate10k replays a 10k-job Poisson instance end to end with
// verification.
func BenchmarkSimulate10k(b *testing.B) {
	inst := workload.Poisson(workload.Spec{N: 10000, Eps: 0.1, M: 8, Seed: 42})
	th, err := core.New(8, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(th, inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRatioSolve measures one c(ε,m) recursion solve at m = 64.
func BenchmarkRatioSolve(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ratio.Compute(0.01, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdversaryGame plays one full lower-bound game (m = 8).
func BenchmarkAdversaryGame(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		th, err := NewScheduler(8, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Adversary(th, 0.05, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGen measures generating a 10k-job Pareto instance.
func BenchmarkWorkloadGen(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		workload.Pareto(workload.Spec{N: 10000, Eps: 0.1, M: 8, Seed: int64(i)})
	}
}
