package main

// Run metadata stamped into every BENCH_*.json report so perf
// trajectories stay comparable across hosts and commits. Added as a
// single new "meta" field; all pre-existing report fields are stable.

import (
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
)

// runMeta identifies the environment a benchmark report came from.
type runMeta struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// CPUModel is the host CPU's self-reported model name (from
	// /proc/cpuinfo on Linux; empty where unavailable). Scaling numbers
	// are meaningless without knowing the silicon they ran on.
	CPUModel string `json:"cpu_model,omitempty"`
	GOOS     string `json:"goos"`
	GOARCH   string `json:"goarch"`
	// Commit is the repository HEAD at run time ("unknown" outside a
	// checkout), with a "-dirty" suffix when the worktree had local
	// modifications.
	Commit string `json:"commit"`
}

// collectMeta gathers the stamp. GOMAXPROCS is read at call time, so
// sweeps that change it should collect the stamp first.
func collectMeta() runMeta {
	return runMeta{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Commit:     commitHash(),
	}
}

// cpuModel reads the first "model name" entry from /proc/cpuinfo.
// Best-effort: returns "" on non-Linux hosts or unreadable procfs
// rather than failing the run.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "model name"); ok {
			if _, val, ok := strings.Cut(rest, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}

// commitHash resolves the source revision: VCS stamping from the build
// info when present (go build of a tagged main package), else git
// directly (the `go run` path), else "unknown".
func commitHash() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		if rev != "" {
			if modified == "true" {
				rev += "-dirty"
			}
			return rev
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	rev := strings.TrimSpace(string(out))
	if rev == "" {
		return "unknown"
	}
	if err := exec.Command("git", "diff", "--quiet", "HEAD").Run(); err != nil {
		rev += "-dirty"
	}
	return rev
}
