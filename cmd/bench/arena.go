package main

// The arena benchmark mode (ISSUE 9): race every registered admission
// policy over the same streams and report accepted-mass-vs-OPT
// competitive curves. Two stream classes are covered:
//
//   - E-series adversarial: the Section 3 lower-bound adversary
//     (internal/adversary) plays each policy at every ε on the grid.
//     OPT here is the adversary's certified optimal schedule, so the
//     reported ratio is a genuine realized competitive ratio. A policy
//     that rejects the set-up job is recorded as unbounded (JSON has no
//     +Inf, so the point carries "unbounded": true and ratio 0).
//
//   - Workload-generator streams: every workload family is run through
//     every policy; OPT is the offline upper bound
//     (internal/offline.UpperBound), so the reported ratio is an upper
//     bound on the true competitive ratio at that point.
//
// With -check every workload point is additionally run in lockstep
// twice (two fresh instances of the same policy), proving the policy
// decides deterministically — the property VerifyReplay and WAL
// recovery lean on.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"loadmax/internal/adversary"
	"loadmax/internal/offline"
	"loadmax/internal/online"
	"loadmax/internal/policy"
	"loadmax/internal/workload"
)

type arenaConfig struct {
	out      string
	policies string // comma-separated admission-policy specs
	epsGrid  string // comma-separated ε values for the adversary games
	machines int
	n        int
	load     float64
	seed     int64
	eps      float64 // workload-stream slack ε
	quick    bool
	check    bool
}

// arenaAdvPoint is one adversary game: one policy at one ε.
type arenaAdvPoint struct {
	Policy       string  `json:"policy"`
	Eps          float64 `json:"eps"`
	M            int     `json:"m"`
	TheoreticalC float64 `json:"theoretical_c"` // c(ε,m), the Theorem 1 target
	Jobs         int     `json:"jobs"`
	ALGLoad      float64 `json:"alg_load"`
	OPTLoad      float64 `json:"opt_load"`
	Ratio        float64 `json:"ratio"` // OPT/ALG; 0 when unbounded
	Unbounded    bool    `json:"unbounded"`
	U            int     `json:"u"` // final phase-2 subphase
	H            int     `json:"h"` // final phase-3 subphase (0 = never ran)
}

// arenaWorkPoint is one workload-generator stream: one policy × family.
type arenaWorkPoint struct {
	Policy             string  `json:"policy"`
	Family             string  `json:"family"`
	Jobs               int     `json:"jobs"`
	Accepted           int     `json:"accepted"`
	AcceptedMass       float64 `json:"accepted_mass"`
	OfflineUpperBound  float64 `json:"offline_upper_bound"`
	CompetitiveRatio   float64 `json:"competitive_ratio"` // upper bound / accepted mass
	DeterminismChecked bool    `json:"determinism_checked"`
}

// arenaReport is the full BENCH_arena.json document (EXPERIMENTS.md §E21).
type arenaReport struct {
	Benchmark     string           `json:"benchmark"`
	SchemaVersion int              `json:"schema_version"`
	Meta          runMeta          `json:"meta"`
	Machines      int              `json:"machines"`
	Policies      []string         `json:"policies"`
	Workload      workloadParams   `json:"workload"`
	Adversary     []arenaAdvPoint  `json:"adversary"`
	Workloads     []arenaWorkPoint `json:"workloads"`
}

func runArena(cfg arenaConfig) error {
	if cfg.quick {
		if cfg.n > 600 {
			cfg.n = 600
		}
		cfg.epsGrid = "0.25,1"
		if cfg.machines > 3 {
			cfg.machines = 3
		}
	}
	specs := splitList(cfg.policies)
	if len(specs) == 0 {
		return fmt.Errorf("empty -arena-policies list")
	}
	builders := make([]policy.Builder, len(specs))
	for i, spec := range specs {
		b, err := policy.Parse(spec)
		if err != nil {
			return err
		}
		builders[i] = b
		specs[i] = b.Spec // canonical spelling in the report
	}
	epsGrid, err := parseFloats(cfg.epsGrid)
	if err != nil {
		return fmt.Errorf("bad -arena-eps list: %v", err)
	}

	rep := arenaReport{
		Benchmark:     "arena",
		SchemaVersion: 1,
		Meta:          collectMeta(),
		Machines:      cfg.machines,
		Policies:      specs,
		Workload:      workloadParams{Family: "all", N: cfg.n, Eps: cfg.eps, Load: cfg.load, Seed: cfg.seed},
	}

	// --- E-series adversarial games.
	fmt.Printf("%-26s %-6s %8s %10s %10s %8s %10s\n",
		"policy", "eps", "jobs", "ALG", "OPT", "ratio", "c(eps,m)")
	for i, b := range builders {
		for _, eps := range epsGrid {
			s, err := b.New(cfg.machines, eps)
			if err != nil {
				return fmt.Errorf("%s at eps=%g: %w", specs[i], eps, err)
			}
			out, err := adversary.Run(s, eps, adversary.Config{})
			if err != nil {
				return fmt.Errorf("adversary vs %s at eps=%g: %w", specs[i], eps, err)
			}
			pt := arenaAdvPoint{
				Policy: specs[i], Eps: eps, M: cfg.machines,
				TheoreticalC: out.Params.C, Jobs: len(out.Instance),
				ALGLoad: out.ALGLoad, OPTLoad: out.OPTLoad,
				Unbounded: out.Unbounded, U: out.U, H: out.H,
			}
			ratioStr := "unbounded"
			if !out.Unbounded && !math.IsInf(out.Ratio, 0) {
				pt.Ratio = out.Ratio
				ratioStr = fmt.Sprintf("%.4f", out.Ratio)
			}
			rep.Adversary = append(rep.Adversary, pt)
			fmt.Printf("%-26s %-6g %8d %10.4f %10.4f %8s %10.4f\n",
				pt.Policy, pt.Eps, pt.Jobs, pt.ALGLoad, pt.OPTLoad, ratioStr, pt.TheoreticalC)
		}
	}

	// --- Workload-generator streams.
	fmt.Printf("\n%-26s %-16s %8s %10s %14s %10s %8s\n",
		"policy", "family", "jobs", "accepted", "accepted mass", "OPT ub", "ratio")
	for _, fam := range workload.Families {
		inst := fam.Gen(workload.Spec{
			N: cfg.n, Eps: cfg.eps, M: cfg.machines, Load: cfg.load, Seed: cfg.seed,
		})
		opt := offline.UpperBound(inst, cfg.machines)
		for i, b := range builders {
			s, err := b.New(cfg.machines, cfg.eps)
			if err != nil {
				return err
			}
			pt := arenaWorkPoint{
				Policy: specs[i], Family: fam.Name, Jobs: len(inst),
				OfflineUpperBound: opt,
			}
			for _, j := range inst {
				if d := s.Submit(j); d.Accepted {
					pt.Accepted++
					pt.AcceptedMass += j.Proc
				}
			}
			if pt.AcceptedMass > 0 {
				pt.CompetitiveRatio = opt / pt.AcceptedMass
			}
			if cfg.check {
				a, err := b.New(cfg.machines, cfg.eps)
				if err != nil {
					return err
				}
				c, err := b.New(cfg.machines, cfg.eps)
				if err != nil {
					return err
				}
				if div := online.Lockstep(a, c, inst); div != nil {
					return fmt.Errorf("%s is nondeterministic on %s: %v", specs[i], fam.Name, div)
				}
				pt.DeterminismChecked = true
			}
			rep.Workloads = append(rep.Workloads, pt)
			fmt.Printf("%-26s %-16s %8d %10d %14.3f %10.3f %8.4f\n",
				pt.Policy, pt.Family, pt.Jobs, pt.Accepted, pt.AcceptedMass,
				pt.OfflineUpperBound, pt.CompetitiveRatio)
		}
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if cfg.out == "-" {
		os.Stdout.Write(blob)
		return nil
	}
	if err := os.WriteFile(cfg.out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.out)
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("eps %g must be > 0", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
