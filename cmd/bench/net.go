package main

// The net benchmark mode (ISSUE 5): measure the network admission path
// end-to-end. An in-process loadmax daemon (serve.Service fronted by
// netserve.Server) listens on a loopback port; the sweep varies client
// count × per-client pipelining depth and reports wire throughput and
// round-trip verdict latency. With -check, each sweep point first runs
// the workload through a decision-logged service and proves every
// shard's networked decision stream bit-identical to a sequential
// replay (VerifyReplay); the timed pass then runs log-free.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"loadmax/internal/job"
	"loadmax/internal/netserve"
	"loadmax/internal/obs"
	"loadmax/internal/serve"
	"loadmax/internal/workload"
)

type netConfig struct {
	out        string
	clients    string // comma-separated client counts
	pipeline   string // comma-separated pipelining depths
	n          int
	family     string
	eps        float64
	load       float64
	seed       int64
	shards     int
	machines   int
	queueDepth int
	batchSize  int
	window     int
	quick      bool
	check      bool
}

// netPoint is one (clients, pipeline) sweep point.
type netPoint struct {
	Clients  int `json:"clients"`
	Pipeline int `json:"pipeline"` // concurrent submitters per client
	Jobs     int `json:"jobs"`

	WallSeconds  float64 `json:"wall_seconds"`
	JobsPerSec   float64 `json:"jobs_per_sec"`
	P50SubmitNs  float64 `json:"p50_submit_ns"`
	P99SubmitNs  float64 `json:"p99_submit_ns"`
	Accepted     int64   `json:"accepted"`
	AcceptedMass float64 `json:"accepted_mass"`
	Shed         int64   `json:"shed"`

	EquivalenceChecked bool `json:"equivalence_checked"`
}

// netReport is the full BENCH_net.json document.
type netReport struct {
	Benchmark        string         `json:"benchmark"`
	SchemaVersion    int            `json:"schema_version"`
	Meta             runMeta        `json:"meta"`
	NumCPU           int            `json:"num_cpu"`
	Shards           int            `json:"shards"`
	MachinesPerShard int            `json:"machines_per_shard"`
	Window           int            `json:"window"`
	QueueDepth       int            `json:"queue_depth"`
	BatchSize        int            `json:"batch_size"`
	Workload         workloadParams `json:"workload"`
	Results          []netPoint     `json:"results"`
}

func runNet(cfg netConfig) error {
	if cfg.quick {
		cfg.clients = "1,2"
		cfg.pipeline = "1,4"
		if cfg.n > 4000 {
			cfg.n = 4000
		}
		cfg.check = true
	}
	fam, ok := workload.ByName(cfg.family)
	if !ok {
		return fmt.Errorf("unknown workload family %q", cfg.family)
	}
	clientCounts, err := parseInts(cfg.clients)
	if err != nil {
		return fmt.Errorf("bad -clients list: %w", err)
	}
	pipelines, err := parseInts(cfg.pipeline)
	if err != nil {
		return fmt.Errorf("bad -pipeline list: %w", err)
	}
	inst := fam.Gen(workload.Spec{
		N: cfg.n, Eps: cfg.eps, M: cfg.shards * cfg.machines, Load: cfg.load, Seed: cfg.seed,
	})
	rep := netReport{
		Benchmark:        "net",
		SchemaVersion:    1,
		Meta:             collectMeta(),
		NumCPU:           runtime.NumCPU(),
		Shards:           cfg.shards,
		MachinesPerShard: cfg.machines,
		Window:           cfg.window,
		QueueDepth:       cfg.queueDepth,
		BatchSize:        cfg.batchSize,
		Workload: workloadParams{
			Family: fam.Name, N: cfg.n, Eps: cfg.eps, Load: cfg.load, Seed: cfg.seed,
		},
	}

	fmt.Printf("%-8s %-9s %12s %12s %12s %10s %6s\n",
		"clients", "pipeline", "jobs/sec", "p50 ns", "p99 ns", "accepted", "shed")
	for _, clients := range clientCounts {
		for _, pipeline := range pipelines {
			pt, err := runNetPoint(cfg, inst, clients, pipeline)
			if err != nil {
				return err
			}
			rep.Results = append(rep.Results, pt)
			fmt.Printf("%-8d %-9d %12.0f %12.0f %12.0f %10d %6d\n",
				pt.Clients, pt.Pipeline, pt.JobsPerSec,
				pt.P50SubmitNs, pt.P99SubmitNs, pt.Accepted, pt.Shed)
		}
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if cfg.out == "-" {
		os.Stdout.Write(blob)
		return nil
	}
	if err := os.WriteFile(cfg.out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.out)
	return nil
}

// runNetPoint measures one sweep point against a fresh daemon on a
// loopback port. The -check pass runs first on a decision-logged
// service; the timed pass runs log-free so verification cost never
// pollutes the numbers.
func runNetPoint(cfg netConfig, inst job.Instance, clients, pipeline int) (netPoint, error) {
	pt := netPoint{Clients: clients, Pipeline: pipeline, Jobs: len(inst)}

	if cfg.check {
		svc, srv, err := startNetDaemon(cfg, nil, serve.WithDecisionLog())
		if err != nil {
			return pt, err
		}
		if _, err := driveNet(srv.Addr().String(), inst, clients, pipeline, nil); err != nil {
			return pt, err
		}
		if err := srv.Close(); err != nil {
			return pt, err
		}
		if err := svc.Close(); err != nil {
			return pt, err
		}
		if err := svc.VerifyReplay(); err != nil {
			return pt, fmt.Errorf("net equivalence at clients=%d pipeline=%d: %w", clients, pipeline, err)
		}
		pt.EquivalenceChecked = true
	}

	reg := obs.NewRegistry()
	svc, srv, err := startNetDaemon(cfg, reg)
	if err != nil {
		return pt, err
	}
	latencies := make([]int64, 0, len(inst))
	start := time.Now()
	lat, err := driveNet(srv.Addr().String(), inst, clients, pipeline, latencies)
	if err != nil {
		return pt, err
	}
	wall := time.Since(start)
	if err := srv.Close(); err != nil {
		return pt, err
	}
	snaps := svc.Snapshot()
	pt.AcceptedMass = svc.AcceptedMass()
	if err := svc.Close(); err != nil {
		return pt, err
	}
	for _, s := range snaps {
		pt.Accepted += s.Accepted
	}
	pt.Shed = reg.Counter("netserve_shed_total").Value()
	pt.WallSeconds = wall.Seconds()
	if pt.WallSeconds > 0 {
		pt.JobsPerSec = float64(len(inst)) / pt.WallSeconds
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	pt.P50SubmitNs = percentile(lat, 0.50)
	pt.P99SubmitNs = percentile(lat, 0.99)
	return pt, nil
}

func startNetDaemon(cfg netConfig, reg *obs.Registry, extra ...serve.Option) (*serve.Service, *netserve.Server, error) {
	opts := append([]serve.Option{
		serve.WithQueueDepth(cfg.queueDepth),
		serve.WithBatchSize(cfg.batchSize),
	}, extra...)
	svc, err := serve.New(cfg.shards, cfg.machines, cfg.eps, opts...)
	if err != nil {
		return nil, nil, err
	}
	srv, err := netserve.Serve(svc, "127.0.0.1:0",
		netserve.WithWindow(cfg.window),
		netserve.WithServerMetrics(reg))
	if err != nil {
		svc.Close()
		return nil, nil, err
	}
	return svc, srv, nil
}

// driveNet fans inst over clients×pipeline concurrent wire streams
// (striped by index so each stream stays release-ordered). Shed
// verdicts are retried after a brief backoff — overload protection is
// retryable by contract — so every job ends in a real decision. When
// lat is non-nil it returns one round-trip latency sample per job.
func driveNet(addr string, inst job.Instance, clients, pipeline int, lat []int64) ([]int64, error) {
	streams := clients * pipeline
	var latMu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, streams)
	pool := make([]*netserve.Client, clients)
	for c := range pool {
		cl, err := netserve.Dial(addr, netserve.WithConns(1))
		if err != nil {
			return lat, err
		}
		defer cl.Close()
		pool[c] = cl
	}
	for c := 0; c < clients; c++ {
		for p := 0; p < pipeline; p++ {
			wg.Add(1)
			go func(cl *netserve.Client, stream int) {
				defer wg.Done()
				var local []int64
				if lat != nil {
					local = make([]int64, 0, len(inst)/streams+1)
				}
				for i := stream; i < len(inst); i += streams {
					for {
						t0 := time.Now()
						_, err := cl.SubmitTimeout(inst[i], 30*time.Second)
						if err == nil {
							if lat != nil {
								local = append(local, time.Since(t0).Nanoseconds())
							}
							break
						}
						if err == netserve.ErrShed {
							time.Sleep(50 * time.Microsecond)
							continue
						}
						errs[stream] = fmt.Errorf("stream %d job %d: %w", stream, inst[i].ID, err)
						return
					}
				}
				if lat != nil {
					latMu.Lock()
					lat = append(lat, local...)
					latMu.Unlock()
				}
			}(pool[c], c*pipeline+p)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return lat, err
		}
	}
	return lat, nil
}
