package main

// The batch benchmark mode (ISSUE 7): measure the batched admission
// path end-to-end and pin its speedup against the per-job wire
// baseline. The sweep varies client count × batch size; for every
// client count it first measures a per-job baseline (the BENCH_net
// drive loop: pipelined singles), then drives the same workload through
// Client.SubmitBatch. With -check, each sweep point first runs batched
// AND span-traced through a decision-logged daemon and proves every
// shard's decision stream bit-identical to a sequential replay
// (VerifyReplay); the timed pass then runs log-free, so the headline
// speedup can never come from a behavioral shortcut.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"loadmax/internal/job"
	"loadmax/internal/netserve"
	"loadmax/internal/obs"
	"loadmax/internal/serve"
	"loadmax/internal/workload"
)

type batchConfig struct {
	out        string
	clients    string // comma-separated client counts
	sizes      string // comma-separated batch sizes
	pipeline   int    // per-client pipelining depth of the per-job baseline
	n          int
	family     string
	eps        float64
	load       float64
	seed       int64
	shards     int
	machines   int
	queueDepth int
	batchSize  int
	window     int
	quick      bool
	check      bool
}

// batchBaseline is the per-job reference at one client count.
type batchBaseline struct {
	Clients    int     `json:"clients"`
	Pipeline   int     `json:"pipeline"`
	Jobs       int     `json:"jobs"`
	WallSecs   float64 `json:"wall_seconds"`
	JobsPerSec float64 `json:"jobs_per_sec"`
}

// batchPoint is one (clients, batch size) sweep point.
type batchPoint struct {
	Clients   int `json:"clients"`
	BatchJobs int `json:"batch_jobs"` // jobs per submit-batch frame
	Jobs      int `json:"jobs"`

	WallSeconds  float64 `json:"wall_seconds"`
	JobsPerSec   float64 `json:"jobs_per_sec"`
	P50BatchNs   float64 `json:"p50_batch_ns"` // round trip per batch frame
	P99BatchNs   float64 `json:"p99_batch_ns"`
	Accepted     int64   `json:"accepted"`
	AcceptedMass float64 `json:"accepted_mass"`
	Shed         int64   `json:"shed"`

	// SpeedupVsPerJob is this point's jobs/sec over the per-job baseline
	// at the same client count.
	SpeedupVsPerJob    float64 `json:"speedup_vs_per_job"`
	EquivalenceChecked bool    `json:"equivalence_checked"`
}

// batchReport is the full BENCH_batch.json document.
type batchReport struct {
	Benchmark        string          `json:"benchmark"`
	SchemaVersion    int             `json:"schema_version"`
	Meta             runMeta         `json:"meta"`
	NumCPU           int             `json:"num_cpu"`
	Shards           int             `json:"shards"`
	MachinesPerShard int             `json:"machines_per_shard"`
	Window           int             `json:"window"`
	QueueDepth       int             `json:"queue_depth"`
	BatchSize        int             `json:"batch_size"` // serve-side drain batch
	Workload         workloadParams  `json:"workload"`
	Baselines        []batchBaseline `json:"baselines"`
	Results          []batchPoint    `json:"results"`

	// Speedup is the headline: best batched jobs/sec over best per-job
	// jobs/sec across the sweep.
	BestPerJobJobsPerSec float64 `json:"best_per_job_jobs_per_sec"`
	BestBatchJobsPerSec  float64 `json:"best_batch_jobs_per_sec"`
	Speedup              float64 `json:"speedup"`
}

func runBatch(cfg batchConfig) error {
	if cfg.quick {
		cfg.clients = "1,2"
		cfg.sizes = "16,64"
		if cfg.n > 4000 {
			cfg.n = 4000
		}
		cfg.check = true
	}
	fam, ok := workload.ByName(cfg.family)
	if !ok {
		return fmt.Errorf("unknown workload family %q", cfg.family)
	}
	clientCounts, err := parseInts(cfg.clients)
	if err != nil {
		return fmt.Errorf("bad -clients list: %w", err)
	}
	sizes, err := parseInts(cfg.sizes)
	if err != nil {
		return fmt.Errorf("bad -batch-jobs list: %w", err)
	}
	for _, b := range sizes {
		if b > netserve.MaxBatchJobs {
			return fmt.Errorf("batch size %d exceeds the wire cap %d", b, netserve.MaxBatchJobs)
		}
	}
	inst := fam.Gen(workload.Spec{
		N: cfg.n, Eps: cfg.eps, M: cfg.shards * cfg.machines, Load: cfg.load, Seed: cfg.seed,
	})
	rep := batchReport{
		Benchmark:        "batch",
		SchemaVersion:    1,
		Meta:             collectMeta(),
		NumCPU:           runtime.NumCPU(),
		Shards:           cfg.shards,
		MachinesPerShard: cfg.machines,
		Window:           cfg.window,
		QueueDepth:       cfg.queueDepth,
		BatchSize:        cfg.batchSize,
		Workload: workloadParams{
			Family: fam.Name, N: cfg.n, Eps: cfg.eps, Load: cfg.load, Seed: cfg.seed,
		},
	}
	ncfg := netConfig{
		n: cfg.n, family: cfg.family, eps: cfg.eps, load: cfg.load, seed: cfg.seed,
		shards: cfg.shards, machines: cfg.machines,
		queueDepth: cfg.queueDepth, batchSize: cfg.batchSize, window: cfg.window,
	}

	fmt.Printf("%-8s %-10s %12s %12s %12s %10s %9s\n",
		"clients", "batch", "jobs/sec", "p50 ns", "p99 ns", "accepted", "speedup")
	for _, clients := range clientCounts {
		base, err := runBatchBaseline(ncfg, inst, clients, cfg.pipeline)
		if err != nil {
			return err
		}
		rep.Baselines = append(rep.Baselines, base)
		if base.JobsPerSec > rep.BestPerJobJobsPerSec {
			rep.BestPerJobJobsPerSec = base.JobsPerSec
		}
		fmt.Printf("%-8d %-10s %12.0f %12s %12s %10s %9s\n",
			clients, "per-job", base.JobsPerSec, "-", "-", "-", "1.00x")
		for _, size := range sizes {
			pt, err := runBatchPoint(cfg, ncfg, inst, clients, size)
			if err != nil {
				return err
			}
			if base.JobsPerSec > 0 {
				pt.SpeedupVsPerJob = pt.JobsPerSec / base.JobsPerSec
			}
			if pt.JobsPerSec > rep.BestBatchJobsPerSec {
				rep.BestBatchJobsPerSec = pt.JobsPerSec
			}
			rep.Results = append(rep.Results, pt)
			fmt.Printf("%-8d %-10d %12.0f %12.0f %12.0f %10d %8.2fx\n",
				pt.Clients, pt.BatchJobs, pt.JobsPerSec,
				pt.P50BatchNs, pt.P99BatchNs, pt.Accepted, pt.SpeedupVsPerJob)
		}
	}
	if rep.BestPerJobJobsPerSec > 0 {
		rep.Speedup = rep.BestBatchJobsPerSec / rep.BestPerJobJobsPerSec
	}
	fmt.Printf("best per-job %.0f jobs/sec, best batched %.0f jobs/sec: %.2fx\n",
		rep.BestPerJobJobsPerSec, rep.BestBatchJobsPerSec, rep.Speedup)

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if cfg.out == "-" {
		os.Stdout.Write(blob)
		return nil
	}
	if err := os.WriteFile(cfg.out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.out)
	return nil
}

// runBatchBaseline measures the per-job reference: the same drive loop
// BENCH_net uses (pipelined singles), on a fresh daemon.
func runBatchBaseline(ncfg netConfig, inst job.Instance, clients, pipeline int) (batchBaseline, error) {
	base := batchBaseline{Clients: clients, Pipeline: pipeline, Jobs: len(inst)}
	svc, srv, err := startNetDaemon(ncfg, nil)
	if err != nil {
		return base, err
	}
	start := time.Now()
	if _, err := driveNet(srv.Addr().String(), inst, clients, pipeline, nil); err != nil {
		return base, err
	}
	base.WallSecs = time.Since(start).Seconds()
	if err := srv.Close(); err != nil {
		return base, err
	}
	if err := svc.Close(); err != nil {
		return base, err
	}
	if base.WallSecs > 0 {
		base.JobsPerSec = float64(len(inst)) / base.WallSecs
	}
	return base, nil
}

// runBatchPoint measures one (clients, batch size) point against a
// fresh daemon. The -check pass runs first — batched AND span-traced on
// a decision-logged service, then VerifyReplay — so equivalence is
// proven on the exact path being timed; the timed pass runs log-free.
func runBatchPoint(cfg batchConfig, ncfg netConfig, inst job.Instance, clients, size int) (batchPoint, error) {
	pt := batchPoint{Clients: clients, BatchJobs: size, Jobs: len(inst)}

	if cfg.check {
		rec := obs.NewSpanRecorder(obs.NewRegistry(), obs.WithSlowLog(nil))
		svc, srv, err := startNetDaemon(ncfg, nil, serve.WithDecisionLog(), serve.WithSpans(rec))
		if err != nil {
			return pt, err
		}
		if _, err := driveBatch(srv.Addr().String(), inst, clients, size, nil); err != nil {
			return pt, err
		}
		if err := srv.Close(); err != nil {
			return pt, err
		}
		if err := svc.Close(); err != nil {
			return pt, err
		}
		if err := svc.VerifyReplay(); err != nil {
			return pt, fmt.Errorf("batch equivalence at clients=%d batch=%d: %w", clients, size, err)
		}
		pt.EquivalenceChecked = true
	}

	reg := obs.NewRegistry()
	svc, srv, err := startNetDaemon(ncfg, reg)
	if err != nil {
		return pt, err
	}
	start := time.Now()
	lat, err := driveBatch(srv.Addr().String(), inst, clients, size, make([]int64, 0, len(inst)/size+1))
	if err != nil {
		return pt, err
	}
	wall := time.Since(start)
	if err := srv.Close(); err != nil {
		return pt, err
	}
	snaps := svc.Snapshot()
	pt.AcceptedMass = svc.AcceptedMass()
	if err := svc.Close(); err != nil {
		return pt, err
	}
	for _, s := range snaps {
		pt.Accepted += s.Accepted
	}
	pt.Shed = reg.Counter("netserve_shed_total").Value()
	pt.WallSeconds = wall.Seconds()
	if pt.WallSeconds > 0 {
		pt.JobsPerSec = float64(len(inst)) / pt.WallSeconds
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	pt.P50BatchNs = percentile(lat, 0.50)
	pt.P99BatchNs = percentile(lat, 0.99)
	return pt, nil
}

// driveBatch fans inst over clients concurrent batched streams (striped
// by index so each stream stays release-ordered) and submits each
// stripe in batch frames of size jobs. Shed jobs — the server refusing
// a whole frame or a shard queue bouncing a sub-batch — are retried
// after a brief backoff, so every job ends in a real decision. When lat
// is non-nil it returns one round-trip sample per batch frame.
func driveBatch(addr string, inst job.Instance, clients, size int, lat []int64) ([]int64, error) {
	var latMu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			cl, err := netserve.Dial(addr, netserve.WithConns(1))
			if err != nil {
				errs[stream] = err
				return
			}
			defer cl.Close()
			var stripe []job.Job
			for i := stream; i < len(inst); i += clients {
				stripe = append(stripe, inst[i])
			}
			var local []int64
			for off := 0; off < len(stripe); off += size {
				chunk := stripe[off:min(off+size, len(stripe))]
				for len(chunk) > 0 {
					t0 := time.Now()
					res, err := cl.SubmitBatch(chunk)
					if err != nil {
						errs[stream] = fmt.Errorf("stream %d: %w", stream, err)
						return
					}
					if lat != nil {
						local = append(local, time.Since(t0).Nanoseconds())
					}
					// Retry only the shed jobs, preserving their order.
					var again []job.Job
					for k, r := range res {
						switch {
						case r.Err == nil:
						case r.Err == netserve.ErrShed:
							again = append(again, chunk[k])
						default:
							errs[stream] = fmt.Errorf("stream %d job %d: %w", stream, chunk[k].ID, r.Err)
							return
						}
					}
					chunk = again
					if len(chunk) > 0 {
						time.Sleep(50 * time.Microsecond)
					}
				}
			}
			if lat != nil {
				latMu.Lock()
				lat = append(lat, local...)
				latMu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return lat, err
		}
	}
	return lat, nil
}
