// Command bench is the reproducible benchmark runner. It has five
// modes:
//
//   - submit (ISSUE 2): sweeps the machine count m for both core
//     engines — the seed's naive engine and the default incremental
//     engine — and emits BENCH_submit.json.
//   - serve (ISSUE 3): sweeps shard count × GOMAXPROCS through the
//     internal/serve sharded admission service and emits
//     BENCH_serve.json (jobs/sec, p50/p99 submit latency, scaling
//     efficiency vs one shard).
//   - recover (ISSUE 4): sweeps commitment-log length through
//     serve.Restore — with and without a mid-stream checkpoint — and
//     emits BENCH_recover.json (recovery wall time, records replayed
//     per second, log bytes).
//   - net (ISSUE 5): sweeps client count × pipelining depth against an
//     in-process loadmax daemon on a loopback port and emits
//     BENCH_net.json (wire jobs/sec, p50/p99 round-trip latency).
//   - batch (ISSUE 7): sweeps client count × batch size through the
//     batched wire path (Client.SubmitBatch → frameSubmitBatch → grouped
//     shard handoff → one verdict-batch) against the per-job baseline at
//     the same client count, and emits BENCH_batch.json (jobs/sec,
//     p50/p99 per-batch round trip, speedup vs per-job).
//   - scale (ISSUE 8): the multi-core scaling sweep — re-runs the
//     serve, net and batch surfaces at GOMAXPROCS × shard count with
//     replay verification forced at every point, gates on the untraced
//     Submit hot path staying 0 allocs/op, and emits BENCH_scale.json
//     (jobs/sec, speedup and scaling efficiency vs the GOMAXPROCS
//     baseline of each surface×shards group).
//   - arena (ISSUE 9): races every registered admission policy
//     (Threshold, the δ-commitment grid, the greedy baseline) over the
//     Section 3 adversary at an ε grid and over every workload family,
//     and emits BENCH_arena.json (accepted mass, realized or bounded
//     competitive ratio per policy × stream).
//   - trace (ISSUE 6): runs the same workload untraced and span-traced
//     over two Submit paths — the loopback netserve RPC (headline) and
//     the raw in-process service (adversarial microbenchmark) — and
//     emits BENCH_trace.json (throughputs, tracing overhead %,
//     per-stage latency percentiles).
//
// All schemas are documented in EXPERIMENTS.md. Every report carries a
// "meta" stamp (go version, GOMAXPROCS, commit hash) so numbers stay
// comparable across hosts and revisions.
//
// With -check, every sweep point is first verified before anything is
// timed — lockstep engine equivalence in submit mode, per-shard
// sequential-replay equivalence in serve and recover modes — so a
// reported speedup can never come from a behavioral shortcut.
//
// Usage:
//
//	go run ./cmd/bench                                  # submit sweep → BENCH_submit.json
//	go run ./cmd/bench -quick -check -out -             # CI smoke: small m, equivalence-checked
//	go run ./cmd/bench -mode serve -check               # serve sweep → BENCH_serve.json
//	go run ./cmd/bench -mode serve -quick -check -out - # CI smoke for the serving layer
//	go run ./cmd/bench -mode recover -check             # recovery sweep → BENCH_recover.json
//	go run ./cmd/bench -mode recover -quick -check -out - # CI smoke for recovery
//	go run ./cmd/bench -mode net -check                 # network sweep → BENCH_net.json
//	go run ./cmd/bench -mode net -quick -check -out -   # CI smoke for the wire path
//	go run ./cmd/bench -mode batch -check               # batched sweep → BENCH_batch.json
//	go run ./cmd/bench -mode batch -quick -check -out - # CI smoke for the batched path
//	go run ./cmd/bench -mode trace -check               # tracing overhead → BENCH_trace.json
//	go run ./cmd/bench -mode trace -quick -out -        # CI smoke for span tracing
//	go run ./cmd/bench -mode scale                      # scaling sweep → BENCH_scale.json (always checked)
//	go run ./cmd/bench -mode scale -quick -out -        # CI smoke for the scaling sweep
//	go run ./cmd/bench -mode arena -check               # policy arena → BENCH_arena.json
//	go run ./cmd/bench -mode arena -quick -check -out - # CI smoke for the policy arena
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"slices"
	"strconv"
	"strings"
	"testing"

	"loadmax/internal/core"
	"loadmax/internal/job"
	"loadmax/internal/obs"
	"loadmax/internal/obs/expo"
	"loadmax/internal/online"
	"loadmax/internal/workload"
)

// engineResult is one engine's measurement at one sweep point.
type engineResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// sweepPoint is one machine count of the sweep.
type sweepPoint struct {
	M                  int          `json:"m"`
	K                  int          `json:"k"`
	Jobs               int          `json:"jobs"`
	Naive              engineResult `json:"naive"`
	Incremental        engineResult `json:"incremental"`
	Speedup            float64      `json:"speedup"`
	EquivalenceChecked bool         `json:"equivalence_checked"`
}

// report is the full BENCH_submit.json document.
type report struct {
	Benchmark     string         `json:"benchmark"`
	SchemaVersion int            `json:"schema_version"`
	Meta          runMeta        `json:"meta"`
	Workload      workloadParams `json:"workload"`
	Results       []sweepPoint   `json:"results"`
}

// knownModes is the authoritative -mode list; keep it in sync with the
// dispatch in main and the doc comment above.
var knownModes = []string{"submit", "serve", "recover", "net", "batch", "trace", "scale", "arena", "cluster"}

type workloadParams struct {
	Family string  `json:"family"`
	N      int     `json:"n"`
	Eps    float64 `json:"eps"`
	Load   float64 `json:"load"`
	Seed   int64   `json:"seed"`
}

func main() {
	var (
		mode   = flag.String("mode", "submit", "benchmark mode: "+strings.Join(knownModes, ", "))
		out    = flag.String("out", "", "output file for the JSON report ('-' = stdout only; default BENCH_<mode>.json)")
		mList  = flag.String("m", "2,8,64,512,4096", "submit: comma-separated machine counts to sweep")
		n      = flag.Int("n", 20000, "jobs per run")
		family = flag.String("family", "poisson", "workload family (see -families)")
		eps    = flag.Float64("eps", 0.1, "slack ε")
		load   = flag.Float64("load", 1.5, "offered load per machine")
		seed   = flag.Int64("seed", 42, "workload RNG seed")
		quick  = flag.Bool("quick", false, "small sweep for CI smoke")
		check  = flag.Bool("check", false, "verify equivalence at every sweep point (lockstep engines / per-shard sequential replay)")
		fams   = flag.Bool("families", false, "list workload families and exit")

		shardsList = flag.String("shards", "1,2,4,8", "serve: comma-separated shard counts to sweep")
		procsList  = flag.String("procs", "", "serve: comma-separated GOMAXPROCS values (default: current setting)")
		submitters = flag.Int("submitters", 0, "serve: concurrent submitting goroutines (0 = 2×GOMAXPROCS)")
		serveM     = flag.Int("serve-machines", 64, "serve/recover: machines per shard")
		queueDepth = flag.Int("queue", 1024, "serve: per-shard submission queue depth")
		batchSize  = flag.Int("batch", 64, "serve: max submissions drained per batch")
		policyName = flag.String("policy", "hash-by-id", "serve: routing policy (hash-by-id, length-class, round-robin)")

		recordsList   = flag.String("records", "1000,5000,20000", "recover: comma-separated commitment-log lengths to sweep")
		recoverShards = flag.Int("recover-shards", 2, "recover: shard count of the durable service")

		clientsList  = flag.String("clients", "1,2,4,8", "net: comma-separated client counts to sweep")
		pipelineList = flag.String("pipeline", "1,4,16", "net: comma-separated pipelining depths to sweep")
		netShards    = flag.Int("net-shards", 4, "net/batch: shard count of the daemon")
		netWindow    = flag.Int("net-window", 256, "net/batch: per-connection in-flight window")

		batchJobsList = flag.String("batch-jobs", "8,32,128,512", "batch: comma-separated jobs-per-frame sizes to sweep")
		batchPipeline = flag.Int("batch-pipeline", 16, "batch: per-client pipelining depth of the per-job baseline")

		scaleProcs    = flag.String("scale-procs", "1,2,4,8", "scale: comma-separated GOMAXPROCS values to sweep (first value is the baseline)")
		scaleShards   = flag.String("scale-shards", "1,4", "scale: comma-separated shard counts to sweep")
		scaleClients  = flag.Int("scale-clients", 2, "scale: wire clients driving the net/batch surfaces")
		scalePipeline = flag.Int("scale-pipeline", 8, "scale: per-client pipelining depth of the net surface")
		scaleBatch    = flag.Int("scale-batch", 64, "scale: jobs per frame on the batch surface")

		traceShards   = flag.Int("trace-shards", 4, "trace: shard count of both services")
		traceRepeat   = flag.Int("trace-repeat", 5, "trace: instance repetitions per timed round")
		traceRounds   = flag.Int("trace-rounds", 3, "trace: timed rounds per configuration (best-of)")
		traceClients  = flag.Int("trace-clients", 2, "trace: wire clients driving the RPC passes")
		tracePipeline = flag.Int("trace-pipeline", 4, "trace: concurrent submitters per wire client")

		arenaPolicies = flag.String("arena-policies",
			"threshold,greedy,delta-commit:delta=0.25,delta-commit:delta=0.5,delta-commit:delta=0.75",
			"arena: comma-separated admission-policy specs to race")
		arenaEps = flag.String("arena-eps", "0.1,0.25,0.5,1", "arena: comma-separated ε grid for the adversary games")
		arenaM   = flag.Int("arena-machines", 4, "arena: machine count of each policy instance")

		clusterGroups   = flag.String("cluster-groups", "1,2,4", "cluster: comma-separated backend-group counts to sweep")
		clusterPipeline = flag.Int("cluster-pipeline", 4, "cluster: concurrent submitters per wire client")
		clusterShards   = flag.Int("cluster-shards", 2, "cluster: shard count of each backend daemon")
		clusterPolicy   = flag.String("cluster-policy", "delta-commit:delta=0.5", "cluster: admission policy every backend runs")
		clusterKill     = flag.Float64("cluster-kill", 0.4, "cluster: kill group 0's primary after this fraction of the burst is decided")

		adminAddr = flag.String("admin", "", "admin HTTP listen address (/statusz, /healthz, /debug/pprof) while the benchmark runs (empty = disabled)")
	)
	flag.Parse()
	if *fams {
		for _, f := range workload.Families {
			fmt.Println(f.Name)
		}
		return
	}
	if *adminAddr != "" {
		// An ops plane on the runner itself: long sweeps become
		// observable (live pprof profiles, process status) without
		// instrumenting each mode. Sweep-point registries stay private to
		// keep per-point numbers isolated.
		admin := expo.NewAdmin(obs.NewRegistry(),
			expo.WithServerName("bench"),
			expo.WithBuild(expo.CollectBuild()))
		admin.RegisterStatus("bench", func() any {
			return map[string]any{"mode": *mode, "args": os.Args[1:]}
		})
		if err := admin.ListenAndServe(*adminAddr); err != nil {
			fatal(err)
		}
		defer admin.Close()
		fmt.Printf("bench: admin plane on http://%s (/statusz /healthz /debug/pprof)\n", admin.Addr())
	}
	if !slices.Contains(knownModes, *mode) {
		fmt.Fprintf(os.Stderr, "bench: unknown -mode %q (known modes: %s)\n", *mode, strings.Join(knownModes, ", "))
		os.Exit(2)
	}
	if *mode == "serve" {
		if *out == "" {
			*out = "BENCH_serve.json"
		}
		cfg := serveConfig{
			out: *out, shards: *shardsList, procs: *procsList,
			n: *n, family: *family, eps: *eps, load: *load, seed: *seed,
			submitters: *submitters, machines: *serveM,
			queueDepth: *queueDepth, batchSize: *batchSize,
			policy: *policyName, quick: *quick, check: *check,
		}
		if err := runServe(cfg); err != nil {
			fatal(err)
		}
		return
	}
	if *mode == "recover" {
		if *out == "" {
			*out = "BENCH_recover.json"
		}
		cfg := recoverConfig{
			out: *out, records: *recordsList, shards: *recoverShards, machines: *serveM,
			family: *family, eps: *eps, load: *load, seed: *seed,
			quick: *quick, check: *check,
		}
		if err := runRecover(cfg); err != nil {
			fatal(err)
		}
		return
	}
	if *mode == "net" {
		if *out == "" {
			*out = "BENCH_net.json"
		}
		cfg := netConfig{
			out: *out, clients: *clientsList, pipeline: *pipelineList,
			n: *n, family: *family, eps: *eps, load: *load, seed: *seed,
			shards: *netShards, machines: *serveM,
			queueDepth: *queueDepth, batchSize: *batchSize,
			window: *netWindow, quick: *quick, check: *check,
		}
		if err := runNet(cfg); err != nil {
			fatal(err)
		}
		return
	}
	if *mode == "batch" {
		if *out == "" {
			*out = "BENCH_batch.json"
		}
		cfg := batchConfig{
			out: *out, clients: *clientsList, sizes: *batchJobsList,
			pipeline: *batchPipeline,
			n:        *n, family: *family, eps: *eps, load: *load, seed: *seed,
			shards: *netShards, machines: *serveM,
			queueDepth: *queueDepth, batchSize: *batchSize,
			window: *netWindow, quick: *quick, check: *check,
		}
		if err := runBatch(cfg); err != nil {
			fatal(err)
		}
		return
	}
	if *mode == "scale" {
		if *out == "" {
			*out = "BENCH_scale.json"
		}
		// Replay verification is mandatory in scale mode; there is no
		// -check knob to forget.
		cfg := scaleConfig{
			out: *out, procs: *scaleProcs, shards: *scaleShards,
			n: *n, family: *family, eps: *eps, load: *load, seed: *seed,
			machines: *serveM, queueDepth: *queueDepth, batchSize: *batchSize,
			window: *netWindow, clients: *scaleClients, pipeline: *scalePipeline,
			batchJobs: *scaleBatch, quick: *quick,
		}
		if err := runScale(cfg); err != nil {
			fatal(err)
		}
		return
	}
	if *mode == "arena" {
		if *out == "" {
			*out = "BENCH_arena.json"
		}
		cfg := arenaConfig{
			out: *out, policies: *arenaPolicies, epsGrid: *arenaEps,
			machines: *arenaM, n: *n, load: *load, seed: *seed, eps: *eps,
			quick: *quick, check: *check,
		}
		if cfg.n > 2000 {
			cfg.n = 2000 // the offline bound is the cost driver, not Submit
		}
		if err := runArena(cfg); err != nil {
			fatal(err)
		}
		return
	}
	if *mode == "cluster" {
		if *out == "" {
			*out = "BENCH_cluster.json"
		}
		cfg := clusterConfig{
			out: *out, groups: *clusterGroups, clients: *clientsList,
			pipeline: *clusterPipeline,
			n:        *n, family: *family, eps: *eps, load: *load, seed: *seed,
			backendShards: *clusterShards, machines: *serveM,
			policy: *clusterPolicy, window: *netWindow,
			killFrac: *clusterKill, quick: *quick,
		}
		if err := runCluster(cfg); err != nil {
			fatal(err)
		}
		return
	}
	if *mode == "trace" {
		if *out == "" {
			*out = "BENCH_trace.json"
		}
		cfg := traceConfig{
			out: *out, n: *n, family: *family, eps: *eps, load: *load, seed: *seed,
			shards: *traceShards, machines: *serveM,
			queueDepth: *queueDepth, batchSize: *batchSize,
			submitters: *submitters, repeat: *traceRepeat, rounds: *traceRounds,
			clients: *traceClients, pipeline: *tracePipeline, window: *netWindow,
			quick: *quick, check: *check,
		}
		if cfg.submitters <= 0 {
			cfg.submitters = 8
		}
		if err := runTrace(cfg); err != nil {
			fatal(err)
		}
		return
	}
	if *out == "" {
		*out = "BENCH_submit.json"
	}
	if *quick {
		*mList = "2,8,64"
		if *n > 4000 {
			*n = 4000
		}
	}
	fam, ok := workload.ByName(*family)
	if !ok {
		fmt.Fprintf(os.Stderr, "bench: unknown workload family %q\n", *family)
		os.Exit(2)
	}
	ms, err := parseInts(*mList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: bad -m list: %v\n", err)
		os.Exit(2)
	}

	rep := report{
		Benchmark:     "submit",
		SchemaVersion: 1,
		Meta:          collectMeta(),
		Workload:      workloadParams{Family: fam.Name, N: *n, Eps: *eps, Load: *load, Seed: *seed},
	}
	fmt.Printf("%-6s %-5s %14s %14s %9s %s\n", "m", "k", "naive ns/op", "incr ns/op", "speedup", "allocs (naive/incr)")
	for _, m := range ms {
		inst := fam.Gen(workload.Spec{N: *n, Eps: *eps, M: m, Load: *load, Seed: *seed})
		naive, err := core.New(m, *eps, core.WithNaiveCore())
		if err != nil {
			fatal(err)
		}
		inc, err := core.New(m, *eps)
		if err != nil {
			fatal(err)
		}
		if *check {
			if div := online.Lockstep(naive, inc, inst); div != nil {
				fatal(fmt.Errorf("engines diverged at m=%d: %v", m, div))
			}
		}
		pt := sweepPoint{
			M:                  m,
			K:                  inc.Params().K,
			Jobs:               len(inst),
			Naive:              measure(naive, inst),
			Incremental:        measure(inc, inst),
			EquivalenceChecked: *check,
		}
		if pt.Incremental.NsPerOp > 0 {
			pt.Speedup = pt.Naive.NsPerOp / pt.Incremental.NsPerOp
		}
		rep.Results = append(rep.Results, pt)
		fmt.Printf("%-6d %-5d %14.1f %14.1f %8.2fx %d/%d\n",
			pt.M, pt.K, pt.Naive.NsPerOp, pt.Incremental.NsPerOp, pt.Speedup,
			pt.Naive.AllocsPerOp, pt.Incremental.AllocsPerOp)
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// measure times th.Submit over the instance with testing.Benchmark,
// resetting the scheduler (outside the timer) each time the replay
// wraps — the same loop shape as the repository's bench_obs_test.go, so
// the numbers are comparable.
func measure(th *core.Threshold, inst job.Instance) engineResult {
	r := testing.Benchmark(func(b *testing.B) {
		th.Reset()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			th.Submit(inst[i%len(inst)])
			if (i+1)%len(inst) == 0 {
				b.StopTimer()
				th.Reset()
				b.StartTimer()
			}
		}
	})
	return engineResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("machine count %d must be ≥ 1", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
