package main

// The recover benchmark mode (ISSUE 4): measure crash-recovery cost as
// a function of commitment-log length. For each sweep point the harness
// builds a durable service, runs the workload through it (so the log
// holds exactly that many decision records, optionally half-covered by
// a checkpoint), closes it, and times serve.Restore rebuilding the
// service — snapshot import plus verified log replay. With -check the
// restored service must additionally pass VerifyReplay, proving the
// recovered tail bit-identical to a sequential re-execution.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"loadmax/internal/obs"
	"loadmax/internal/serve"
	"loadmax/internal/workload"
)

type recoverConfig struct {
	out      string
	records  string // comma-separated log lengths to sweep
	shards   int
	machines int
	family   string
	eps      float64
	load     float64
	seed     int64
	quick    bool
	check    bool
}

// recoverPoint is one (records, checkpoint) sweep point.
type recoverPoint struct {
	Records    int  `json:"records"`
	Checkpoint bool `json:"checkpoint"` // snapshot taken halfway through

	LogBytes        int64   `json:"log_bytes"`
	RecordsReplayed int64   `json:"records_replayed"`
	RecoverMs       float64 `json:"recover_ms"` // best of three restores
	ReplayPerSec    float64 `json:"replayed_records_per_sec"`
	ReplayVerified  bool    `json:"replay_verified"`
}

// recoverReport is the full BENCH_recover.json document.
type recoverReport struct {
	Benchmark        string         `json:"benchmark"`
	SchemaVersion    int            `json:"schema_version"`
	Meta             runMeta        `json:"meta"`
	Shards           int            `json:"shards"`
	MachinesPerShard int            `json:"machines_per_shard"`
	Workload         workloadParams `json:"workload"`
	Results          []recoverPoint `json:"results"`
}

func runRecover(cfg recoverConfig) error {
	if cfg.quick {
		cfg.records = "500,2000"
	}
	lengths, err := parseInts(cfg.records)
	if err != nil {
		return fmt.Errorf("bad -records list: %v", err)
	}
	fam, ok := workload.ByName(cfg.family)
	if !ok {
		return fmt.Errorf("unknown workload family %q", cfg.family)
	}
	rep := recoverReport{
		Benchmark:        "recover",
		SchemaVersion:    1,
		Meta:             collectMeta(),
		Shards:           cfg.shards,
		MachinesPerShard: cfg.machines,
		Workload:         workloadParams{Family: fam.Name, Eps: cfg.eps, Load: cfg.load, Seed: cfg.seed},
	}
	fmt.Printf("%-9s %-10s %12s %10s %12s %14s\n",
		"records", "checkpoint", "log bytes", "replayed", "recover ms", "replayed/sec")
	for _, n := range lengths {
		for _, checkpoint := range []bool{false, true} {
			pt, err := runRecoverPoint(cfg, fam, n, checkpoint)
			if err != nil {
				return err
			}
			rep.Results = append(rep.Results, pt)
			fmt.Printf("%-9d %-10v %12d %10d %12.2f %14.0f\n",
				pt.Records, pt.Checkpoint, pt.LogBytes, pt.RecordsReplayed, pt.RecoverMs, pt.ReplayPerSec)
		}
	}
	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if cfg.out == "-" {
		os.Stdout.Write(blob)
		return nil
	}
	if err := os.WriteFile(cfg.out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.out)
	return nil
}

func runRecoverPoint(cfg recoverConfig, fam workload.Family, n int, checkpoint bool) (recoverPoint, error) {
	pt := recoverPoint{Records: n, Checkpoint: checkpoint}
	inst := fam.Gen(workload.Spec{
		N: n, Eps: cfg.eps, M: cfg.shards * cfg.machines, Load: cfg.load, Seed: cfg.seed,
	})
	dir, err := os.MkdirTemp("", "loadmax-bench-recover-*")
	if err != nil {
		return pt, err
	}
	defer os.RemoveAll(dir)

	// Populate the durable state. The flush interval coalesces fsyncs so
	// building big logs stays fast; it has no effect on what is measured
	// (recovery reads the finished log).
	svc, err := serve.New(cfg.shards, cfg.machines, cfg.eps,
		serve.WithDurability(dir), serve.WithFlushInterval(200*time.Microsecond))
	if err != nil {
		return pt, err
	}
	for i, j := range inst {
		if checkpoint && i == n/2 {
			if err := svc.Checkpoint(); err != nil {
				return pt, err
			}
		}
		if _, err := svc.Submit(j); err != nil {
			return pt, err
		}
	}
	if err := svc.Close(); err != nil {
		return pt, err
	}
	for s := 0; s < cfg.shards; s++ {
		pt.LogBytes += fileSizeOrZero(filepath.Join(dir, fmt.Sprintf("shard-%04d", s), "wal.log"))
	}

	// Time recovery: best of three full restores. Every restore is a
	// complete rebuild (snapshot import + verified replay); closing in
	// between releases the log file handles.
	best := time.Duration(1<<63 - 1)
	for trial := 0; trial < 3; trial++ {
		reg := obs.NewRegistry()
		opts := []serve.Option{serve.WithMetrics(reg)}
		if cfg.check {
			opts = append(opts, serve.WithDecisionLog())
		}
		start := time.Now()
		rec, err := serve.Restore(dir, opts...)
		elapsed := time.Since(start)
		if err != nil {
			return pt, err
		}
		if elapsed < best {
			best = elapsed
		}
		pt.RecordsReplayed = reg.Counter("serve_recovery_records_replayed").Value()
		if cfg.check {
			if err := rec.VerifyReplay(); err != nil {
				rec.Close()
				return pt, fmt.Errorf("records=%d checkpoint=%v: %w", n, checkpoint, err)
			}
			pt.ReplayVerified = true
		}
		if err := rec.Close(); err != nil {
			return pt, err
		}
	}
	pt.RecoverMs = float64(best.Nanoseconds()) / 1e6
	if best > 0 {
		pt.ReplayPerSec = float64(pt.RecordsReplayed) / best.Seconds()
	}
	return pt, nil
}

func fileSizeOrZero(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}
