package main

// The serve benchmark mode (ISSUE 3): drive the internal/serve sharded
// admission service with concurrent submitters and sweep shard count ×
// GOMAXPROCS, reporting aggregate jobs/sec, p50/p99 submit latency and
// scaling efficiency against the single-shard baseline.
//
// With -check, each sweep point first runs the workload through a
// decision-logged service and proves every shard's stream bit-identical
// to a sequential replay through a lone Threshold (VerifyReplay); the
// timed pass then runs without the log so verification cost never
// pollutes the numbers.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"loadmax/internal/job"
	"loadmax/internal/serve"
	"loadmax/internal/workload"
)

type serveConfig struct {
	out        string
	shards     string
	procs      string
	n          int
	family     string
	eps        float64
	load       float64
	seed       int64
	submitters int
	machines   int
	queueDepth int
	batchSize  int
	policy     string
	quick      bool
	check      bool
}

// servePoint is one (shards, GOMAXPROCS) sweep point.
type servePoint struct {
	Shards     int `json:"shards"`
	GoMaxProcs int `json:"gomaxprocs"`
	Submitters int `json:"submitters"`
	Jobs       int `json:"jobs"`

	WallSeconds  float64 `json:"wall_seconds"`
	JobsPerSec   float64 `json:"jobs_per_sec"`
	P50SubmitNs  float64 `json:"p50_submit_ns"`
	P99SubmitNs  float64 `json:"p99_submit_ns"`
	Accepted     int64   `json:"accepted"`
	AcceptedMass float64 `json:"accepted_mass"`

	// SpeedupVs1Shard is jobs/sec relative to the 1-shard point of the
	// same GOMAXPROCS group; ScalingEfficiency divides that by the
	// shard count (1.0 = perfectly linear).
	SpeedupVs1Shard    float64 `json:"speedup_vs_1_shard"`
	ScalingEfficiency  float64 `json:"scaling_efficiency"`
	EquivalenceChecked bool    `json:"equivalence_checked"`
}

// serveReport is the full BENCH_serve.json document.
type serveReport struct {
	Benchmark        string         `json:"benchmark"`
	SchemaVersion    int            `json:"schema_version"`
	Meta             runMeta        `json:"meta"`
	NumCPU           int            `json:"num_cpu"`
	Policy           string         `json:"policy"`
	MachinesPerShard int            `json:"machines_per_shard"`
	QueueDepth       int            `json:"queue_depth"`
	BatchSize        int            `json:"batch_size"`
	Workload         workloadParams `json:"workload"`
	Results          []servePoint   `json:"results"`
}

func newPolicy(name string) (serve.Policy, error) {
	switch name {
	case "hash-by-id":
		return serve.HashByID(), nil
	case "length-class":
		return serve.LengthClass(), nil
	case "round-robin":
		return serve.RoundRobin(), nil
	default:
		return nil, fmt.Errorf("unknown routing policy %q", name)
	}
}

func runServe(cfg serveConfig) error {
	if cfg.quick {
		cfg.shards = "1,2"
		if cfg.n > 8000 {
			cfg.n = 8000
		}
		cfg.check = true
	}
	fam, ok := workload.ByName(cfg.family)
	if !ok {
		return fmt.Errorf("unknown workload family %q", cfg.family)
	}
	shardCounts, err := parseInts(cfg.shards)
	if err != nil {
		return fmt.Errorf("bad -shards list: %w", err)
	}
	procsValues := []int{runtime.GOMAXPROCS(0)}
	if cfg.procs != "" {
		if procsValues, err = parseInts(cfg.procs); err != nil {
			return fmt.Errorf("bad -procs list: %w", err)
		}
	}
	if _, err := newPolicy(cfg.policy); err != nil {
		return err
	}

	inst := fam.Gen(workload.Spec{
		N: cfg.n, Eps: cfg.eps, M: cfg.machines, Load: cfg.load, Seed: cfg.seed,
	})
	// Stamp before the sweep: -procs points mutate GOMAXPROCS.
	rep := serveReport{
		Benchmark:        "serve",
		SchemaVersion:    1,
		Meta:             collectMeta(),
		NumCPU:           runtime.NumCPU(),
		Policy:           cfg.policy,
		MachinesPerShard: cfg.machines,
		QueueDepth:       cfg.queueDepth,
		BatchSize:        cfg.batchSize,
		Workload: workloadParams{
			Family: fam.Name, N: cfg.n, Eps: cfg.eps, Load: cfg.load, Seed: cfg.seed,
		},
	}

	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)

	fmt.Printf("%-7s %-6s %-6s %12s %12s %12s %9s %6s\n",
		"shards", "procs", "subm", "jobs/sec", "p50 ns", "p99 ns", "speedup", "eff")
	for _, procs := range procsValues {
		runtime.GOMAXPROCS(procs)
		base := 0.0
		for _, shards := range shardCounts {
			pt, err := runServePoint(cfg, inst, shards, procs)
			if err != nil {
				return err
			}
			if shards == 1 {
				base = pt.JobsPerSec
			}
			if base > 0 {
				pt.SpeedupVs1Shard = pt.JobsPerSec / base
				pt.ScalingEfficiency = pt.SpeedupVs1Shard / float64(shards)
			}
			rep.Results = append(rep.Results, pt)
			fmt.Printf("%-7d %-6d %-6d %12.0f %12.0f %12.0f %8.2fx %6.2f\n",
				pt.Shards, pt.GoMaxProcs, pt.Submitters, pt.JobsPerSec,
				pt.P50SubmitNs, pt.P99SubmitNs, pt.SpeedupVs1Shard, pt.ScalingEfficiency)
		}
	}
	runtime.GOMAXPROCS(prevProcs)

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if cfg.out == "-" {
		os.Stdout.Write(blob)
		return nil
	}
	if err := os.WriteFile(cfg.out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.out)
	return nil
}

// runServePoint measures one sweep point. The -check pass runs first on
// a separate decision-logged service; the timed pass runs log-free.
func runServePoint(cfg serveConfig, inst job.Instance, shards, procs int) (servePoint, error) {
	submitters := cfg.submitters
	if submitters <= 0 {
		submitters = 2 * procs
	}
	pt := servePoint{
		Shards:     shards,
		GoMaxProcs: procs,
		Submitters: submitters,
		Jobs:       len(inst),
	}

	if cfg.check {
		policy, _ := newPolicy(cfg.policy)
		svc, err := serve.New(shards, cfg.machines, cfg.eps,
			serve.WithPolicy(policy), serve.WithQueueDepth(cfg.queueDepth),
			serve.WithBatchSize(cfg.batchSize), serve.WithDecisionLog())
		if err != nil {
			return pt, err
		}
		if err := driveService(svc, inst, submitters, nil); err != nil {
			return pt, err
		}
		if err := svc.Close(); err != nil {
			return pt, err
		}
		if err := svc.VerifyReplay(); err != nil {
			return pt, fmt.Errorf("serve equivalence at shards=%d procs=%d: %w", shards, procs, err)
		}
		pt.EquivalenceChecked = true
	}

	policy, _ := newPolicy(cfg.policy)
	svc, err := serve.New(shards, cfg.machines, cfg.eps,
		serve.WithPolicy(policy), serve.WithQueueDepth(cfg.queueDepth),
		serve.WithBatchSize(cfg.batchSize))
	if err != nil {
		return pt, err
	}
	latencies := make([]int64, len(inst))
	start := time.Now()
	if err := driveService(svc, inst, submitters, latencies); err != nil {
		return pt, err
	}
	wall := time.Since(start)
	snaps := svc.Snapshot()
	if err := svc.Close(); err != nil {
		return pt, err
	}
	for _, s := range snaps {
		pt.Accepted += s.Accepted
	}
	pt.AcceptedMass = svc.AcceptedMass()
	pt.WallSeconds = wall.Seconds()
	if pt.WallSeconds > 0 {
		pt.JobsPerSec = float64(len(inst)) / pt.WallSeconds
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	pt.P50SubmitNs = percentile(latencies, 0.50)
	pt.P99SubmitNs = percentile(latencies, 0.99)
	return pt, nil
}

// driveService fans inst over g submitter goroutines, striped by index
// so each goroutine's subsequence stays release-ordered. When lat is
// non-nil it receives one Submit round-trip latency (ns) per job, at
// the job's instance index.
func driveService(svc *serve.Service, inst job.Instance, g int, lat []int64) error {
	var wg sync.WaitGroup
	errs := make([]error, g)
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(inst); i += g {
				if lat != nil {
					t0 := time.Now()
					if _, err := svc.Submit(inst[i]); err != nil {
						errs[w] = err
						return
					}
					lat[i] = time.Since(t0).Nanoseconds()
				} else if _, err := svc.Submit(inst[i]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// percentile reads the q-quantile from an ascending-sorted slice.
func percentile(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx])
}
