package main

// The cluster benchmark mode (ISSUE 10): measure the gateway tier
// end-to-end and prove its failover story at every sweep point. Each
// point stands up G in-process backend groups (primary + warm standby,
// all decision-logged) behind a gateway fronted by the netserve wire
// protocol, then drives the workload over clients×pipeline wire
// streams. Mid-burst, group 0's primary is killed at the wire
// (Server.Abort — the in-process kill -9); the point only passes if the
// gateway fails over and the merged per-backend decision streams verify
// bit-identically (gateway.VerifyMergedReplay), with zero acknowledged
// verdicts lost. Replay verification is mandatory in cluster mode;
// there is no -check knob to forget.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"loadmax/internal/gateway"
	"loadmax/internal/job"
	"loadmax/internal/netserve"
	"loadmax/internal/policy"
	"loadmax/internal/serve"
	"loadmax/internal/workload"
)

type clusterConfig struct {
	out           string
	groups        string // comma-separated group counts
	clients       string // comma-separated client counts
	pipeline      int
	n             int
	family        string
	eps           float64
	load          float64
	seed          int64
	backendShards int
	machines      int
	policy        string
	window        int
	killFrac      float64
	quick         bool
}

// clusterPoint is one (groups, clients) sweep point.
type clusterPoint struct {
	Groups   int `json:"groups"`
	Clients  int `json:"clients"`
	Pipeline int `json:"pipeline"`
	Jobs     int `json:"jobs"`

	WallSeconds float64 `json:"wall_seconds"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	P50SubmitNs float64 `json:"p50_submit_ns"`
	P99SubmitNs float64 `json:"p99_submit_ns"`
	Accepted    int64   `json:"accepted"`

	KilledGroup   int    `json:"killed_group"`
	KillAfterJobs int64  `json:"kill_after_jobs"`
	Failovers     int64  `json:"failovers"`
	Replay        string `json:"replay"` // "ok" or the bench failed
}

// clusterReport is the full BENCH_cluster.json document.
type clusterReport struct {
	Benchmark        string         `json:"benchmark"`
	SchemaVersion    int            `json:"schema_version"`
	Meta             runMeta        `json:"meta"`
	NumCPU           int            `json:"num_cpu"`
	BackendShards    int            `json:"backend_shards"`
	MachinesPerShard int            `json:"machines_per_shard"`
	Policy           string         `json:"policy"`
	Window           int            `json:"window"`
	KillFraction     float64        `json:"kill_fraction"`
	Workload         workloadParams `json:"workload"`
	Results          []clusterPoint `json:"results"`
}

func runCluster(cfg clusterConfig) error {
	if cfg.quick {
		cfg.groups = "1,2"
		cfg.clients = "1,2"
		if cfg.n > 3000 {
			cfg.n = 3000
		}
	}
	fam, ok := workload.ByName(cfg.family)
	if !ok {
		return fmt.Errorf("unknown workload family %q", cfg.family)
	}
	groupCounts, err := parseInts(cfg.groups)
	if err != nil {
		return fmt.Errorf("bad -cluster-groups list: %w", err)
	}
	clientCounts, err := parseInts(cfg.clients)
	if err != nil {
		return fmt.Errorf("bad -clients list: %w", err)
	}
	builder, err := policy.Parse(cfg.policy)
	if err != nil {
		return err
	}
	inst := fam.Gen(workload.Spec{
		N: cfg.n, Eps: cfg.eps, M: cfg.backendShards * cfg.machines, Load: cfg.load, Seed: cfg.seed,
	})
	rep := clusterReport{
		Benchmark:        "cluster",
		SchemaVersion:    1,
		Meta:             collectMeta(),
		NumCPU:           runtime.NumCPU(),
		BackendShards:    cfg.backendShards,
		MachinesPerShard: cfg.machines,
		Policy:           builder.Spec,
		Window:           cfg.window,
		KillFraction:     cfg.killFrac,
		Workload: workloadParams{
			Family: fam.Name, N: cfg.n, Eps: cfg.eps, Load: cfg.load, Seed: cfg.seed,
		},
	}

	fmt.Printf("%-7s %-8s %12s %12s %12s %10s %10s %7s\n",
		"groups", "clients", "jobs/sec", "p50 ns", "p99 ns", "accepted", "failovers", "replay")
	for _, groups := range groupCounts {
		for _, clients := range clientCounts {
			pt, err := runClusterPoint(cfg, builder, inst, groups, clients)
			if err != nil {
				return fmt.Errorf("cluster point groups=%d clients=%d: %w", groups, clients, err)
			}
			rep.Results = append(rep.Results, pt)
			fmt.Printf("%-7d %-8d %12.0f %12.0f %12.0f %10d %10d %7s\n",
				pt.Groups, pt.Clients, pt.JobsPerSec,
				pt.P50SubmitNs, pt.P99SubmitNs, pt.Accepted, pt.Failovers, pt.Replay)
		}
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if cfg.out == "-" {
		os.Stdout.Write(blob)
		return nil
	}
	if err := os.WriteFile(cfg.out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.out)
	return nil
}

// clusterBackend is one in-process daemon of a sweep point.
type clusterBackend struct {
	svc *serve.Service
	srv *netserve.Server
}

func startClusterBackend(cfg clusterConfig, builder policy.Builder) (*clusterBackend, error) {
	svc, err := serve.New(cfg.backendShards, cfg.machines, cfg.eps,
		serve.WithAdmissionPolicy(builder), serve.WithDecisionLog())
	if err != nil {
		return nil, err
	}
	srv, err := netserve.Serve(svc, "127.0.0.1:0", netserve.WithWindow(cfg.window))
	if err != nil {
		svc.Close()
		return nil, err
	}
	return &clusterBackend{svc: svc, srv: srv}, nil
}

// runClusterPoint measures one sweep point: fresh backends, fresh
// gateway, a mid-burst kill of group 0's primary, then full merged
// replay verification of every group.
func runClusterPoint(cfg clusterConfig, builder policy.Builder, inst job.Instance, groups, clients int) (clusterPoint, error) {
	pt := clusterPoint{Groups: groups, Clients: clients, Pipeline: cfg.pipeline, Jobs: len(inst)}

	primaries := make([]*clusterBackend, groups)
	standbys := make([]*clusterBackend, groups)
	specs := make([]gateway.BackendSpec, groups)
	defer func() {
		for _, b := range append(primaries, standbys...) {
			if b != nil {
				b.srv.Close()
				b.svc.Close()
			}
		}
	}()
	for g := 0; g < groups; g++ {
		var err error
		if primaries[g], err = startClusterBackend(cfg, builder); err != nil {
			return pt, err
		}
		if standbys[g], err = startClusterBackend(cfg, builder); err != nil {
			return pt, err
		}
		specs[g] = gateway.BackendSpec{
			Primary: primaries[g].srv.Addr().String(),
			Standby: standbys[g].srv.Addr().String(),
		}
	}

	gw, err := gateway.New(specs,
		gateway.WithJournal(),
		gateway.WithProbeInterval(100*time.Millisecond),
		gateway.WithFailThreshold(2),
		gateway.WithCallTimeout(30*time.Second))
	if err != nil {
		return pt, err
	}
	gwClosed := false
	defer func() {
		if !gwClosed {
			gw.Close()
		}
	}()
	front, err := netserve.Serve(gw, "127.0.0.1:0", netserve.WithWindow(cfg.window))
	if err != nil {
		return pt, err
	}
	defer front.Close()

	// The assassin: once the burst is killFrac through, group 0's
	// primary dies at the wire. In-flight frames are lost unacked; the
	// sequencer fails over and re-decides them on the promoted standby.
	kill := int64(float64(len(inst)) * cfg.killFrac)
	pt.KillAfterJobs = kill
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for gw.DecidedJobs() < kill {
			time.Sleep(200 * time.Microsecond)
		}
		primaries[0].srv.Abort()
	}()

	latencies := make([]int64, 0, len(inst))
	start := time.Now()
	lat, err := driveNet(front.Addr().String(), inst, clients, cfg.pipeline, latencies)
	if err != nil {
		return pt, err
	}
	pt.WallSeconds = time.Since(start).Seconds()
	<-killed

	// The kill may have landed after the drive's last frame to group 0;
	// keep poking fresh job IDs until the failover registers so the
	// point always verifies the path it exists to verify.
	if err := awaitFailover(gw, inst); err != nil {
		return pt, err
	}

	if err := front.Close(); err != nil {
		return pt, err
	}
	if err := gw.Close(); err != nil { // flushes every surviving mirror
		return pt, err
	}
	gwClosed = true

	st := gw.Status()
	for _, g := range st.Groups {
		pt.Failovers += g.Failovers
	}
	for g := 0; g < groups; g++ {
		pt.Accepted += countAccepted(gw.Journal(g))
	}
	if pt.WallSeconds > 0 {
		pt.JobsPerSec = float64(len(inst)) / pt.WallSeconds
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	pt.P50SubmitNs = percentile(lat, 0.50)
	pt.P99SubmitNs = percentile(lat, 0.99)

	// Verification, every point, no opt-out: each backend self-replays,
	// and each group's merged (dead primary + promoted/flushed standby)
	// stream passes the failover proof with zero acked-verdict loss.
	for g := 0; g < groups; g++ {
		for _, b := range []*clusterBackend{primaries[g], standbys[g]} {
			if err := b.svc.VerifyReplay(); err != nil {
				return pt, fmt.Errorf("group %d backend replay: %w", g, err)
			}
		}
		if err := gateway.VerifyMergedReplay(builder, cfg.machines, cfg.eps,
			gw.Journal(g), gateway.Streams(primaries[g].svc), gateway.Streams(standbys[g].svc)); err != nil {
			return pt, fmt.Errorf("group %d merged replay: %w", g, err)
		}
	}
	pt.Replay = "ok"
	return pt, nil
}

// awaitFailover nudges the gateway with fresh-ID jobs until group 0
// reports its promotion (probe and submit paths both count).
func awaitFailover(gw *gateway.Gateway, inst job.Instance) error {
	deadline := time.Now().Add(15 * time.Second)
	nextID := 10_000_000
	for {
		for _, g := range gw.Status().Groups {
			if g.Group == 0 && g.Failovers > 0 {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no failover within 15s of killing group 0's primary")
		}
		j := inst[len(inst)-1]
		j.ID = nextID
		nextID++
		gw.Submit(j) //nolint:errcheck // only poking the sequencer
		time.Sleep(2 * time.Millisecond)
	}
}

func countAccepted(journal []gateway.JournalEntry) int64 {
	var n int64
	for _, e := range journal {
		if e.Dec.Accepted {
			n++
		}
	}
	return n
}
