package main

// The scale benchmark mode (ISSUE 8): the multi-core scaling sweep.
// It re-runs the three admission surfaces — serve (in-process Submit),
// net (per-job wire round trips), batch (batched wire frames) — across
// GOMAXPROCS × shard count, and reports each point's throughput plus
// its speedup and scaling efficiency against the GOMAXPROCS baseline of
// the same (surface, shards) group:
//
//	speedup(P)    = jobs_per_sec(P) / jobs_per_sec(P₀)
//	efficiency(P) = speedup(P) × P₀ / P        (1.0 = perfectly linear)
//
// where P₀ is the first value of the -scale-procs list (1 by default,
// which reduces to the textbook jps(P) / (P × jps(1))).
//
// Replay verification is NOT optional in this mode: every sweep point
// first runs the workload through a decision-logged service and proves
// every shard's stream bit-identical to a sequential replay
// (VerifyReplay), so a scaling win can never come from a behavioral
// shortcut. The mode also measures the untraced Submit hot path with
// testing.AllocsPerRun and refuses to emit a report unless it is
// 0 allocs/op — the contention-free fast path is a precondition for the
// numbers meaning anything.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"loadmax/internal/job"
	"loadmax/internal/serve"
	"loadmax/internal/workload"
)

type scaleConfig struct {
	out        string
	procs      string // comma-separated GOMAXPROCS values
	shards     string // comma-separated shard counts
	n          int
	family     string
	eps        float64
	load       float64
	seed       int64
	machines   int
	queueDepth int
	batchSize  int
	window     int
	clients    int // wire clients on the net/batch surfaces
	pipeline   int // per-client pipelining depth of the net surface
	batchJobs  int // jobs per frame on the batch surface
	quick      bool
}

// scalePoint is one (surface, shards, GOMAXPROCS) sweep point.
type scalePoint struct {
	Surface    string `json:"surface"` // serve | net | batch
	Mode       string `json:"mode"`    // single | batch submission
	Shards     int    `json:"shards"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Jobs       int    `json:"jobs"`

	WallSeconds float64 `json:"wall_seconds"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	P50Ns       float64 `json:"p50_ns"` // per-op round trip (per-frame on batch)
	P99Ns       float64 `json:"p99_ns"`

	// SpeedupVsBase is jobs/sec relative to the first -scale-procs value
	// of the same (surface, shards) group; ScalingEfficiency normalizes
	// that by the core ratio (1.0 = perfectly linear core scaling).
	SpeedupVsBase      float64 `json:"speedup_vs_base_procs"`
	ScalingEfficiency  float64 `json:"scaling_efficiency"`
	EquivalenceChecked bool    `json:"equivalence_checked"`
}

// scaleReport is the full BENCH_scale.json document.
type scaleReport struct {
	Benchmark        string  `json:"benchmark"`
	SchemaVersion    int     `json:"schema_version"`
	Meta             runMeta `json:"meta"`
	NumCPU           int     `json:"num_cpu"`
	BaseProcs        int     `json:"base_procs"` // the P₀ every group is normalized to
	MachinesPerShard int     `json:"machines_per_shard"`
	QueueDepth       int     `json:"queue_depth"`
	BatchSize        int     `json:"batch_size"` // serve-side drain batch
	Window           int     `json:"window"`
	Clients          int     `json:"clients"`
	Pipeline         int     `json:"pipeline"`
	BatchJobs        int     `json:"batch_jobs"`

	// SubmitAllocsPerOp is the measured steady-state allocation count of
	// an untraced in-process Submit (pooled requests, striped counters).
	// The run aborts if this is not zero.
	SubmitAllocsPerOp float64 `json:"submit_allocs_per_op"`

	Workload workloadParams `json:"workload"`
	Results  []scalePoint   `json:"results"`
}

func runScale(cfg scaleConfig) error {
	if cfg.quick {
		cfg.procs = "1,2"
		cfg.shards = "1,2"
		if cfg.n > 2000 {
			cfg.n = 2000
		}
	}
	fam, ok := workload.ByName(cfg.family)
	if !ok {
		return fmt.Errorf("unknown workload family %q", cfg.family)
	}
	procsValues, err := parseInts(cfg.procs)
	if err != nil {
		return fmt.Errorf("bad -scale-procs list: %w", err)
	}
	shardCounts, err := parseInts(cfg.shards)
	if err != nil {
		return fmt.Errorf("bad -scale-shards list: %w", err)
	}

	// Stamp before the sweep mutates GOMAXPROCS.
	rep := scaleReport{
		Benchmark:        "scale",
		SchemaVersion:    1,
		Meta:             collectMeta(),
		NumCPU:           runtime.NumCPU(),
		BaseProcs:        procsValues[0],
		MachinesPerShard: cfg.machines,
		QueueDepth:       cfg.queueDepth,
		BatchSize:        cfg.batchSize,
		Window:           cfg.window,
		Clients:          cfg.clients,
		Pipeline:         cfg.pipeline,
		BatchJobs:        cfg.batchJobs,
		Workload: workloadParams{
			Family: fam.Name, N: cfg.n, Eps: cfg.eps, Load: cfg.load, Seed: cfg.seed,
		},
	}

	// Gate: the whole point of a scaling sweep is a contention-free hot
	// path, and a per-request allocation is the first way to lose that.
	rep.SubmitAllocsPerOp, err = measureSubmitAllocs(cfg)
	if err != nil {
		return err
	}
	if rep.SubmitAllocsPerOp >= 1 {
		return fmt.Errorf("untraced Submit allocates %.2f/op, want 0 — refusing to report scaling numbers off an allocating hot path",
			rep.SubmitAllocsPerOp)
	}
	fmt.Printf("untraced Submit: %.2f allocs/op (gate: <1)\n", rep.SubmitAllocsPerOp)
	if rep.NumCPU < procsValues[len(procsValues)-1] {
		fmt.Printf("note: host has %d CPU(s); GOMAXPROCS above that measures scheduling overhead, not parallel speedup\n", rep.NumCPU)
	}

	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)

	fmt.Printf("%-7s %-7s %-6s %12s %12s %12s %9s %6s\n",
		"surface", "shards", "procs", "jobs/sec", "p50 ns", "p99 ns", "speedup", "eff")
	for _, surface := range []string{"serve", "net", "batch"} {
		for _, shards := range shardCounts {
			// One instance per (surface, shards) group: constant across the
			// procs axis so speedup compares identical work. Wire surfaces
			// size the workload to the whole cluster, matching their
			// dedicated modes.
			m := cfg.machines
			if surface != "serve" {
				m = shards * cfg.machines
			}
			inst := fam.Gen(workload.Spec{
				N: cfg.n, Eps: cfg.eps, M: m, Load: cfg.load, Seed: cfg.seed,
			})
			base := 0.0
			for _, procs := range procsValues {
				runtime.GOMAXPROCS(procs)
				pt, err := runScalePoint(cfg, inst, surface, shards, procs)
				if err != nil {
					runtime.GOMAXPROCS(prevProcs)
					return err
				}
				if procs == procsValues[0] {
					base = pt.JobsPerSec
				}
				if base > 0 {
					pt.SpeedupVsBase = pt.JobsPerSec / base
					pt.ScalingEfficiency = pt.SpeedupVsBase * float64(procsValues[0]) / float64(procs)
				}
				rep.Results = append(rep.Results, pt)
				fmt.Printf("%-7s %-7d %-6d %12.0f %12.0f %12.0f %8.2fx %6.2f\n",
					pt.Surface, pt.Shards, pt.GoMaxProcs, pt.JobsPerSec,
					pt.P50Ns, pt.P99Ns, pt.SpeedupVsBase, pt.ScalingEfficiency)
			}
		}
	}
	runtime.GOMAXPROCS(prevProcs)

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if cfg.out == "-" {
		os.Stdout.Write(blob)
		return nil
	}
	if err := os.WriteFile(cfg.out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.out)
	return nil
}

// runScalePoint measures one sweep point by delegating to the surface's
// dedicated-mode runner with equivalence checking forced on, then
// normalizes the result into a scalePoint.
func runScalePoint(cfg scaleConfig, inst job.Instance, surface string, shards, procs int) (scalePoint, error) {
	pt := scalePoint{Surface: surface, Mode: "single", Shards: shards, GoMaxProcs: procs, Jobs: len(inst)}
	ncfg := netConfig{
		n: cfg.n, family: cfg.family, eps: cfg.eps, load: cfg.load, seed: cfg.seed,
		shards: shards, machines: cfg.machines,
		queueDepth: cfg.queueDepth, batchSize: cfg.batchSize, window: cfg.window,
		check: true,
	}
	switch surface {
	case "serve":
		scfg := serveConfig{
			n: cfg.n, family: cfg.family, eps: cfg.eps, load: cfg.load, seed: cfg.seed,
			machines: cfg.machines, queueDepth: cfg.queueDepth, batchSize: cfg.batchSize,
			policy: "hash-by-id", check: true,
		}
		sp, err := runServePoint(scfg, inst, shards, procs)
		if err != nil {
			return pt, err
		}
		pt.WallSeconds, pt.JobsPerSec = sp.WallSeconds, sp.JobsPerSec
		pt.P50Ns, pt.P99Ns = sp.P50SubmitNs, sp.P99SubmitNs
		pt.EquivalenceChecked = sp.EquivalenceChecked
	case "net":
		np, err := runNetPoint(ncfg, inst, cfg.clients, cfg.pipeline)
		if err != nil {
			return pt, err
		}
		pt.WallSeconds, pt.JobsPerSec = np.WallSeconds, np.JobsPerSec
		pt.P50Ns, pt.P99Ns = np.P50SubmitNs, np.P99SubmitNs
		pt.EquivalenceChecked = np.EquivalenceChecked
	case "batch":
		pt.Mode = "batch"
		bcfg := batchConfig{
			n: cfg.n, family: cfg.family, eps: cfg.eps, load: cfg.load, seed: cfg.seed,
			shards: shards, machines: cfg.machines,
			queueDepth: cfg.queueDepth, batchSize: cfg.batchSize, window: cfg.window,
			check: true,
		}
		bp, err := runBatchPoint(bcfg, ncfg, inst, cfg.clients, cfg.batchJobs)
		if err != nil {
			return pt, err
		}
		pt.WallSeconds, pt.JobsPerSec = bp.WallSeconds, bp.JobsPerSec
		pt.P50Ns, pt.P99Ns = bp.P50BatchNs, bp.P99BatchNs
		pt.EquivalenceChecked = bp.EquivalenceChecked
	default:
		return pt, fmt.Errorf("unknown scale surface %q", surface)
	}
	if !pt.EquivalenceChecked {
		return pt, fmt.Errorf("scale point %s shards=%d procs=%d ran without replay verification", surface, shards, procs)
	}
	return pt, nil
}

// measureSubmitAllocs reports the steady-state allocations of an
// untraced in-process Submit on a warm single-shard service — the same
// guard internal/serve's TestSubmitUntracedStaysLean pins, re-measured
// here so the report carries the number it was gated on.
// testing.AllocsPerRun pins GOMAXPROCS to 1 for the measurement, so run
// it before the sweep, not inside it.
func measureSubmitAllocs(cfg scaleConfig) (float64, error) {
	svc, err := serve.New(1, cfg.machines, cfg.eps,
		serve.WithQueueDepth(cfg.queueDepth), serve.WithBatchSize(cfg.batchSize))
	if err != nil {
		return 0, err
	}
	defer svc.Close()
	j := job.Job{ID: 1, Proc: 0.001, Deadline: 1e12}
	for i := 0; i < 100; i++ { // warm the request pool and batch scratch
		if _, err := svc.Submit(j); err != nil {
			return 0, err
		}
	}
	var submitErr error
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := svc.Submit(j); err != nil {
			submitErr = err
		}
	})
	return allocs, submitErr
}
