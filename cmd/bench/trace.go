package main

// The trace benchmark mode (ISSUE 6): measure what request-lifecycle
// tracing costs on the Submit path.
//
// The headline number is the daemon's Submit surface — the netserve RPC
// over loopback, which is the path the spans actually instrument (frame
// decode, shard queue, engine decide, reply write). Two identically
// configured daemons serve the same workload: one untraced, one with
// the full production tracing shape (server spans + serve spans sharing
// one recorder, span ring on). The report carries both throughputs and
// the overhead percentage.
//
// An `engine` section reports the same comparison for the raw
// in-process serve.Service.Submit path — a deliberately adversarial
// microbenchmark where the baseline is sub-microsecond, so the fixed
// per-request tracing cost (two clock reads plus histogram/ring
// aggregation) shows up undiluted. It is included so the per-request
// cost is visible, not hidden behind the wire path's syscalls.
//
// With -check, both traced configurations first run decision-logged and
// prove every shard's stream bit-identical to a sequential replay
// (VerifyReplay) — the acceptance claim that span capture does not
// perturb decisions.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"loadmax/internal/job"
	"loadmax/internal/netserve"
	"loadmax/internal/obs"
	"loadmax/internal/serve"
	"loadmax/internal/workload"
)

type traceConfig struct {
	out        string
	n          int
	family     string
	eps        float64
	load       float64
	seed       int64
	shards     int
	machines   int
	queueDepth int
	batchSize  int
	submitters int
	clients    int
	pipeline   int
	window     int
	repeat     int
	rounds     int
	quick      bool
	check      bool
}

// tracePass is one timed configuration (tracing off or on).
type tracePass struct {
	Jobs        int     `json:"jobs"`
	WallSeconds float64 `json:"wall_seconds"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
}

// stageStat summarizes one lifecycle stage of the traced pass, read
// from its span_stage_seconds histogram (percentiles are bucket upper
// bounds, i.e. conservative).
type stageStat struct {
	Stage string  `json:"stage"`
	Count int64   `json:"count"`
	P50Ns float64 `json:"p50_ns"`
	P99Ns float64 `json:"p99_ns"`
}

// traceSection is one off-vs-on comparison over a named submit path.
type traceSection struct {
	Path        string    `json:"path"`
	Off         tracePass `json:"tracing_off"`
	On          tracePass `json:"tracing_on"`
	OverheadPct float64   `json:"overhead_pct"`
}

// traceReport is the full BENCH_trace.json document. The top-level
// Off/On/OverheadPct mirror the RPC section: the daemon's Submit
// surface is the headline.
type traceReport struct {
	Benchmark          string         `json:"benchmark"`
	SchemaVersion      int            `json:"schema_version"`
	Meta               runMeta        `json:"meta"`
	NumCPU             int            `json:"num_cpu"`
	Shards             int            `json:"shards"`
	MachinesPerShard   int            `json:"machines_per_shard"`
	Clients            int            `json:"clients"`
	Pipeline           int            `json:"pipeline"`
	Submitters         int            `json:"submitters"`
	Repeat             int            `json:"repeat"`
	Rounds             int            `json:"rounds"`
	Workload           workloadParams `json:"workload"`
	SubmitPath         string         `json:"submit_path"`
	Off                tracePass      `json:"tracing_off"`
	On                 tracePass      `json:"tracing_on"`
	OverheadPct        float64        `json:"overhead_pct"`
	Engine             traceSection   `json:"engine"`
	Stages             []stageStat    `json:"stages"`
	EquivalenceChecked bool           `json:"equivalence_checked"`
}

const (
	rpcPathDesc    = "netserve RPC over loopback (loadmaxd's Submit surface)"
	enginePathDesc = "in-process serve.Service.Submit (sub-microsecond baseline; tracing cost undiluted)"
)

func runTrace(cfg traceConfig) error {
	if cfg.quick {
		if cfg.n > 8000 {
			cfg.n = 8000
		}
		cfg.repeat = 2
		cfg.rounds = 1
		cfg.check = true
	}
	fam, ok := workload.ByName(cfg.family)
	if !ok {
		return fmt.Errorf("unknown workload family %q", cfg.family)
	}
	inst := fam.Gen(workload.Spec{
		N: cfg.n, Eps: cfg.eps, M: cfg.shards * cfg.machines, Load: cfg.load, Seed: cfg.seed,
	})
	rep := traceReport{
		Benchmark:        "trace",
		SchemaVersion:    1,
		Meta:             collectMeta(),
		NumCPU:           runtime.NumCPU(),
		Shards:           cfg.shards,
		MachinesPerShard: cfg.machines,
		Clients:          cfg.clients,
		Pipeline:         cfg.pipeline,
		Submitters:       cfg.submitters,
		Repeat:           cfg.repeat,
		Rounds:           cfg.rounds,
		SubmitPath:       rpcPathDesc,
		Engine:           traceSection{Path: enginePathDesc},
		Workload: workloadParams{
			Family: fam.Name, N: cfg.n, Eps: cfg.eps, Load: cfg.load, Seed: cfg.seed,
		},
	}

	if cfg.check {
		if err := traceCheckEngine(cfg, inst); err != nil {
			return err
		}
		fmt.Println("check: traced in-process run replays bit-identically — ok")
		if err := traceCheckRPC(cfg, inst); err != nil {
			return err
		}
		fmt.Println("check: traced networked run replays bit-identically — ok")
		rep.EquivalenceChecked = true
	}

	// Best-of-rounds for each configuration: the two passes contend with
	// nothing but themselves, so the fastest round is the least-noisy
	// estimate of each path's capacity.
	var stages []stageStat
	for round := 0; round < cfg.rounds; round++ {
		off, _, err := traceRoundRPC(cfg, inst, false)
		if err != nil {
			return err
		}
		if off.JobsPerSec > rep.Off.JobsPerSec {
			rep.Off = off
		}
		on, st, err := traceRoundRPC(cfg, inst, true)
		if err != nil {
			return err
		}
		if on.JobsPerSec > rep.On.JobsPerSec {
			rep.On = on
			stages = st
		}

		engOff, _, err := traceRoundEngine(cfg, inst, false)
		if err != nil {
			return err
		}
		if engOff.JobsPerSec > rep.Engine.Off.JobsPerSec {
			rep.Engine.Off = engOff
		}
		engOn, _, err := traceRoundEngine(cfg, inst, true)
		if err != nil {
			return err
		}
		if engOn.JobsPerSec > rep.Engine.On.JobsPerSec {
			rep.Engine.On = engOn
		}
	}
	rep.Stages = stages
	rep.OverheadPct = overheadPct(rep.Off, rep.On)
	rep.Engine.OverheadPct = overheadPct(rep.Engine.Off, rep.Engine.On)

	fmt.Printf("%-28s %14s %14s %10s\n", "path", "off jobs/sec", "on jobs/sec", "overhead")
	fmt.Printf("%-28s %14.0f %14.0f %9.2f%%\n", "rpc (headline)",
		rep.Off.JobsPerSec, rep.On.JobsPerSec, rep.OverheadPct)
	fmt.Printf("%-28s %14.0f %14.0f %9.2f%%\n", "engine (in-process)",
		rep.Engine.Off.JobsPerSec, rep.Engine.On.JobsPerSec, rep.Engine.OverheadPct)
	for _, st := range rep.Stages {
		fmt.Printf("  stage %-11s count=%-8d p50=%-10v p99=%v\n",
			st.Stage, st.Count, time.Duration(int64(st.P50Ns)), time.Duration(int64(st.P99Ns)))
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if cfg.out == "-" {
		os.Stdout.Write(blob)
		return nil
	}
	if err := os.WriteFile(cfg.out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.out)
	return nil
}

func overheadPct(off, on tracePass) float64 {
	if off.JobsPerSec <= 0 {
		return 0
	}
	return 100 * (off.JobsPerSec - on.JobsPerSec) / off.JobsPerSec
}

// traceRecorder builds the production tracing shape: span ring on (the
// /spanz default), slow log silenced so the console stays clean at
// benchmark rates.
func traceRecorder(reg *obs.Registry) *obs.SpanRecorder {
	return obs.NewSpanRecorder(reg, obs.WithSpanRing(512), obs.WithSlowLog(nil))
}

// traceCheckEngine proves decision bit-identity with in-process tracing
// enabled: a decision-logged AND span-traced service run concurrently
// must replay exactly per shard.
func traceCheckEngine(cfg traceConfig, inst job.Instance) error {
	reg := obs.NewRegistry()
	rec := obs.NewSpanRecorder(reg, obs.WithSlowLog(nil))
	svc, err := serve.New(cfg.shards, cfg.machines, cfg.eps,
		serve.WithQueueDepth(cfg.queueDepth), serve.WithBatchSize(cfg.batchSize),
		serve.WithDecisionLog(), serve.WithSpans(rec))
	if err != nil {
		return err
	}
	if err := driveServiceSpans(svc, rec, inst, cfg.submitters, 1); err != nil {
		return err
	}
	if err := svc.Close(); err != nil {
		return err
	}
	if err := svc.VerifyReplay(); err != nil {
		return fmt.Errorf("trace equivalence (engine): %w", err)
	}
	if got := rec.Finished(); got != uint64(len(inst)) {
		return fmt.Errorf("trace check: %d spans finished, want %d", got, len(inst))
	}
	return nil
}

// traceCheckRPC proves the same over the wire: a fully traced networked
// daemon (server + serve spans on one recorder) with a decision log
// must still replay exactly per shard.
func traceCheckRPC(cfg traceConfig, inst job.Instance) error {
	reg := obs.NewRegistry()
	rec := obs.NewSpanRecorder(reg, obs.WithSlowLog(nil))
	svc, srv, err := startTraceDaemon(cfg, rec, serve.WithDecisionLog())
	if err != nil {
		return err
	}
	if _, err := driveNet(srv.Addr().String(), inst, cfg.clients, cfg.pipeline, nil); err != nil {
		return err
	}
	if err := srv.Close(); err != nil {
		return err
	}
	if err := svc.Close(); err != nil {
		return err
	}
	if err := svc.VerifyReplay(); err != nil {
		return fmt.Errorf("trace equivalence (rpc): %w", err)
	}
	if got := rec.Finished(); got != uint64(len(inst)) {
		return fmt.Errorf("trace check (rpc): %d spans finished, want %d", got, len(inst))
	}
	return nil
}

// startTraceDaemon builds a loopback daemon; a non-nil rec arms the full
// server-side tracing shape on both layers.
func startTraceDaemon(cfg traceConfig, rec *obs.SpanRecorder, extra ...serve.Option) (*serve.Service, *netserve.Server, error) {
	svcOpts := append([]serve.Option{
		serve.WithQueueDepth(cfg.queueDepth),
		serve.WithBatchSize(cfg.batchSize),
	}, extra...)
	srvOpts := []netserve.ServerOption{netserve.WithWindow(cfg.window)}
	if rec != nil {
		svcOpts = append(svcOpts, serve.WithSpans(rec))
		srvOpts = append(srvOpts, netserve.WithServerSpans(rec))
	}
	svc, err := serve.New(cfg.shards, cfg.machines, cfg.eps, svcOpts...)
	if err != nil {
		return nil, nil, err
	}
	srv, err := netserve.Serve(svc, "127.0.0.1:0", srvOpts...)
	if err != nil {
		svc.Close()
		return nil, nil, err
	}
	return svc, srv, nil
}

// traceRoundRPC times one pass of the workload (repeated cfg.repeat
// times) through a fresh loopback daemon, traced or not.
func traceRoundRPC(cfg traceConfig, inst job.Instance, traced bool) (tracePass, []stageStat, error) {
	pass := tracePass{Jobs: len(inst) * cfg.repeat}
	var reg *obs.Registry
	var rec *obs.SpanRecorder
	if traced {
		reg = obs.NewRegistry()
		rec = traceRecorder(reg)
	}
	svc, srv, err := startTraceDaemon(cfg, rec)
	if err != nil {
		return pass, nil, err
	}
	start := time.Now()
	for r := 0; r < cfg.repeat; r++ {
		if _, err := driveNet(srv.Addr().String(), inst, cfg.clients, cfg.pipeline, nil); err != nil {
			srv.Close()
			svc.Close()
			return pass, nil, err
		}
	}
	wall := time.Since(start)
	if err := srv.Close(); err != nil {
		return pass, nil, err
	}
	if err := svc.Close(); err != nil {
		return pass, nil, err
	}
	pass.WallSeconds = wall.Seconds()
	if pass.WallSeconds > 0 {
		pass.JobsPerSec = float64(pass.Jobs) / pass.WallSeconds
	}
	if !traced {
		return pass, nil, nil
	}
	return pass, stageStats(reg), nil
}

// traceRoundEngine times one pass of the workload (repeated cfg.repeat
// times) through a fresh in-process service, traced or not.
func traceRoundEngine(cfg traceConfig, inst job.Instance, traced bool) (tracePass, []stageStat, error) {
	pass := tracePass{Jobs: len(inst) * cfg.repeat}
	opts := []serve.Option{
		serve.WithQueueDepth(cfg.queueDepth), serve.WithBatchSize(cfg.batchSize),
	}
	var reg *obs.Registry
	var rec *obs.SpanRecorder
	if traced {
		reg = obs.NewRegistry()
		rec = traceRecorder(reg)
		opts = append(opts, serve.WithSpans(rec))
	}
	svc, err := serve.New(cfg.shards, cfg.machines, cfg.eps, opts...)
	if err != nil {
		return pass, nil, err
	}
	start := time.Now()
	if traced {
		err = driveServiceSpans(svc, rec, inst, cfg.submitters, cfg.repeat)
	} else {
		err = driveServiceRepeat(svc, inst, cfg.submitters, cfg.repeat)
	}
	wall := time.Since(start)
	if err != nil {
		svc.Close()
		return pass, nil, err
	}
	if err := svc.Close(); err != nil {
		return pass, nil, err
	}
	pass.WallSeconds = wall.Seconds()
	if pass.WallSeconds > 0 {
		pass.JobsPerSec = float64(pass.Jobs) / pass.WallSeconds
	}
	if !traced {
		return pass, nil, nil
	}
	return pass, stageStats(reg), nil
}

// driveServiceRepeat fans repeat passes of inst over g goroutines,
// striped by index like driveService.
func driveServiceRepeat(svc *serve.Service, inst job.Instance, g, repeat int) error {
	for r := 0; r < repeat; r++ {
		if err := driveService(svc, inst, g, nil); err != nil {
			return err
		}
	}
	return nil
}

// driveServiceSpans is driveServiceRepeat with tracing: each goroutine
// reuses one stack Span per submission and finishes it into rec — the
// same shape an instrumented daemon uses, so the measured overhead is
// the production overhead.
func driveServiceSpans(svc *serve.Service, rec *obs.SpanRecorder, inst job.Instance, g, repeat int) error {
	for r := 0; r < repeat; r++ {
		var wg sync.WaitGroup
		errs := make([]error, g)
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var sp obs.Span
				for i := w; i < len(inst); i += g {
					sp.Reset()
					sp.JobID = int64(inst[i].ID)
					sp.Start = rec.Now()
					if _, err := svc.SubmitSpan(inst[i], &sp); err != nil {
						errs[w] = err
						return
					}
					rec.Finish(&sp)
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// stageStats reads per-stage counts and percentile bounds from the
// recorder's registry histograms.
func stageStats(reg *obs.Registry) []stageStat {
	snap := reg.Snapshot()
	var out []stageStat
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		h, ok := snap.Histograms[fmt.Sprintf("span_stage_seconds{stage=%q}", st.String())]
		if !ok || h.Count == 0 {
			continue
		}
		out = append(out, stageStat{
			Stage: st.String(),
			Count: h.Count,
			P50Ns: histQuantileNs(h, 0.50),
			P99Ns: histQuantileNs(h, 0.99),
		})
	}
	return out
}

// histQuantileNs returns the upper bound (ns) of the bucket containing
// the q-quantile — a conservative percentile estimate.
func histQuantileNs(h obs.HistogramSnapshot, q float64) float64 {
	target := int64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, bound := range h.Bounds {
		cum += h.Buckets[i]
		if cum >= target {
			return bound * 1e9
		}
	}
	// Overflow bucket: no finite bound; report the largest finite one.
	if len(h.Bounds) > 0 {
		return h.Bounds[len(h.Bounds)-1] * 1e9
	}
	return 0
}
