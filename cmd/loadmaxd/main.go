// Command loadmaxd is the loadmax admission daemon: it fronts a sharded
// (optionally crash-durable) serve.Service with the netserve wire
// protocol, turning the paper's immediate-commitment model into a
// network RPC — a client submits (r, p, d) and the reply, sent only
// after the decision is recorded, is the irrevocable commitment.
//
// Usage:
//
//	loadmaxd -addr :7133 -shards 8 -machines 64 -eps 0.1
//	loadmaxd -durable /var/lib/loadmax -checkpoint-interval 30s
//	loadmaxd -addr 127.0.0.1:0 -metrics-out metrics.json
//
// With -durable, a directory that already holds a service is restored
// (topology comes from its manifest and -shards/-machines/-eps are
// ignored); a fresh directory starts a new durable service. On SIGINT/
// SIGTERM the daemon drains connections gracefully, checkpoints durable
// state to bound the next recovery, closes the service, and (with
// -metrics-out) writes a final metrics snapshot.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"loadmax/internal/netserve"
	"loadmax/internal/obs"
	"loadmax/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":7133", "TCP listen address (\":0\" picks a free port)")
		shards   = flag.Int("shards", 4, "shard count (ignored when restoring a durable dir)")
		machines = flag.Int("machines", 64, "machines per shard (ignored when restoring)")
		eps      = flag.Float64("eps", 0.1, "slack ε (ignored when restoring)")
		policy   = flag.String("policy", "hash-by-id", "routing policy: hash-by-id, length-class, round-robin")
		queue    = flag.Int("queue", 1024, "per-shard submission queue depth")
		batch    = flag.Int("batch", 64, "max submissions a shard drains per batch")

		durable  = flag.String("durable", "", "durability directory (empty = in-memory only)")
		flushIv  = flag.Duration("flush-interval", 0, "WAL fsync-rate cap (0 = fsync every batch)")
		ckptIv   = flag.Duration("checkpoint-interval", 0, "periodic checkpoint interval (0 = only at shutdown; requires -durable)")
		window   = flag.Int("window", 256, "per-connection in-flight window")
		inflight = flag.Int("max-inflight", 4096, "server-wide in-flight cap before shedding")
		wtimeout = flag.Duration("write-timeout", 10*time.Second, "slow-client disconnect threshold")
		metOut   = flag.String("metrics-out", "", "write a JSON metrics snapshot here on shutdown (\"-\" = stdout)")
	)
	flag.Parse()
	if *ckptIv > 0 && *durable == "" {
		fatal(errors.New("-checkpoint-interval requires -durable"))
	}

	reg := obs.NewRegistry()
	svcOpts := []serve.Option{
		serve.WithMetrics(reg),
		serve.WithQueueDepth(*queue),
		serve.WithBatchSize(*batch),
	}
	switch *policy {
	case "hash-by-id":
		svcOpts = append(svcOpts, serve.WithPolicy(serve.HashByID()))
	case "length-class":
		svcOpts = append(svcOpts, serve.WithPolicy(serve.LengthClass()))
	case "round-robin":
		svcOpts = append(svcOpts, serve.WithPolicy(serve.RoundRobin()))
	default:
		fatal(fmt.Errorf("unknown routing policy %q (want hash-by-id, length-class or round-robin)", *policy))
	}
	if *flushIv > 0 {
		svcOpts = append(svcOpts, serve.WithFlushInterval(*flushIv))
	}

	svc, err := openService(*durable, *shards, *machines, *eps, svcOpts)
	if err != nil {
		fatal(err)
	}

	srv, err := netserve.Serve(svc, *addr,
		netserve.WithServerMetrics(reg),
		netserve.WithWindow(*window),
		netserve.WithMaxInflight(*inflight),
		netserve.WithWriteTimeout(*wtimeout))
	if err != nil {
		svc.Close()
		fatal(err)
	}
	fmt.Printf("loadmaxd: serving %d shards × %d machines (ε=%g) on %s\n",
		svc.Shards(), svc.Machines(), svc.Eps(), srv.Addr())

	stopCkpt := make(chan struct{})
	if *ckptIv > 0 {
		go func() {
			t := time.NewTicker(*ckptIv)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := svc.Checkpoint(); err != nil && !errors.Is(err, serve.ErrClosed) {
						fmt.Fprintln(os.Stderr, "loadmaxd: checkpoint:", err)
					}
				case <-stopCkpt:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("loadmaxd: %v — draining\n", s)
	close(stopCkpt)

	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "loadmaxd: drain:", err)
	}
	if *durable != "" {
		// Bound the next recovery: snapshot and truncate the logs while
		// the service is still live (Checkpoint rides the shard queues).
		if err := svc.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "loadmaxd: final checkpoint:", err)
		}
	}
	if err := svc.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "loadmaxd: close:", err)
	}
	if *metOut != "" {
		if err := writeMetrics(reg, *metOut); err != nil {
			fatal(err)
		}
	}
}

// openService restores dir when it already holds a durable service,
// starts a fresh (durable or in-memory) one otherwise.
func openService(dir string, shards, machines int, eps float64, opts []serve.Option) (*serve.Service, error) {
	if dir == "" {
		return serve.New(shards, machines, eps, opts...)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err == nil {
		fmt.Printf("loadmaxd: restoring durable service from %s\n", dir)
		return serve.Restore(dir, opts...)
	}
	return serve.New(shards, machines, eps, append(opts, serve.WithDurability(dir))...)
}

func writeMetrics(reg *obs.Registry, path string) error {
	if path == "-" {
		return reg.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadmaxd:", err)
	os.Exit(1)
}
