// Command loadmaxd is the loadmax admission daemon: it fronts a sharded
// (optionally crash-durable) serve.Service with the netserve wire
// protocol, turning the paper's immediate-commitment model into a
// network RPC — a client submits (r, p, d) and the reply, sent only
// after the decision is recorded, is the irrevocable commitment.
//
// Usage:
//
//	loadmaxd -addr :7133 -shards 8 -machines 64 -eps 0.1
//	loadmaxd -policy delta-commit:delta=0.5 -router length-class
//	loadmaxd -durable /var/lib/loadmax -checkpoint-interval 30s
//	loadmaxd -addr 127.0.0.1:0 -admin 127.0.0.1:7134 -spans
//
// -policy selects the admission policy every shard runs (threshold,
// greedy, delta-commit:delta=D); the chosen spec is announced to every
// client in the HELLO ack. -router selects how submissions are routed
// to shards (hash-by-id, length-class, round-robin).
//
// With -durable, a directory that already holds a service is restored
// (topology and the admission policy come from its manifest and
// -shards/-machines/-eps are ignored; an explicitly set -policy acts as
// an assertion and the restore fails loudly on a mismatch); a fresh
// directory starts a new durable service. On SIGINT/
// SIGTERM the daemon drains connections gracefully, checkpoints durable
// state to bound the next recovery, closes the service, and (with
// -metrics-out) writes a final metrics snapshot.
//
// With -admin, an ops-plane HTTP listener serves /metrics (Prometheus
// text exposition), /statusz (JSON process + shard status), /healthz
// (drain-aware), /spanz (recent + slow request timelines; needs -spans)
// and /debug/pprof/. cmd/loadmaxctl is the matching CLI.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"loadmax/internal/netserve"
	"loadmax/internal/obs"
	"loadmax/internal/obs/expo"
	"loadmax/internal/policy"
	"loadmax/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":7133", "TCP listen address (\":0\" picks a free port)")
		shards   = flag.Int("shards", 4, "shard count (ignored when restoring a durable dir)")
		machines = flag.Int("machines", 64, "machines per shard (ignored when restoring)")
		eps      = flag.Float64("eps", 0.1, "slack ε (ignored when restoring)")
		router   = flag.String("router", "hash-by-id", "shard routing: "+strings.Join(serve.RouterNames(), ", "))
		admSpec  = flag.String("policy", "threshold", "admission policy: "+strings.Join(policy.Specs(), ", ")+" (a durable restore adopts the directory's policy unless -policy is set explicitly)")
		queue    = flag.Int("queue", 1024, "per-shard submission queue depth")
		batch    = flag.Int("batch", 64, "max submissions a shard drains per batch")

		durable  = flag.String("durable", "", "durability directory (empty = in-memory only)")
		flushIv  = flag.Duration("flush-interval", 0, "WAL fsync-rate cap (0 = fsync every batch)")
		ckptIv   = flag.Duration("checkpoint-interval", 0, "periodic checkpoint interval (0 = only at shutdown; requires -durable)")
		window   = flag.Int("window", 256, "per-connection in-flight window")
		inflight = flag.Int("max-inflight", 4096, "server-wide in-flight cap before shedding")
		wtimeout = flag.Duration("write-timeout", 10*time.Second, "slow-client disconnect threshold")
		hellotmo = flag.Duration("hello-timeout", 10*time.Second, "handshake deadline: a connection that has not completed HELLO by then is cut")
		metOut   = flag.String("metrics-out", "", "write a JSON metrics snapshot here on shutdown (\"-\" = stdout)")

		adminAddr = flag.String("admin", "", "admin HTTP listen address for /metrics, /statusz, /healthz, /spanz, /debug/pprof (empty = disabled)")
		spans     = flag.Bool("spans", false, "trace request lifecycles into per-stage histograms and the /spanz ring")
		slowThr   = flag.Duration("slow-threshold", time.Second, "log requests slower than this with their stage breakdown (0 = disabled; requires -spans)")
		spanRing  = flag.Int("span-ring", 512, "finished-span ring capacity for /spanz (requires -spans)")
		heartbeat = flag.Duration("heartbeat", time.Minute, "periodic one-line stats log interval (0 = disabled)")
	)
	flag.Parse()
	if *ckptIv > 0 && *durable == "" {
		fatal(errors.New("-checkpoint-interval requires -durable"))
	}

	reg := obs.NewRegistry()
	var rec *obs.SpanRecorder
	if *spans {
		rec = obs.NewSpanRecorder(reg,
			obs.WithSpanRing(*spanRing),
			obs.WithSlowThreshold(*slowThr))
	}
	svcOpts := []serve.Option{
		serve.WithMetrics(reg),
		serve.WithQueueDepth(*queue),
		serve.WithBatchSize(*batch),
	}
	if rec != nil {
		svcOpts = append(svcOpts, serve.WithSpans(rec))
	}
	routerPolicy, err := serve.ParseRouter(*router)
	if err != nil {
		fatal(err)
	}
	svcOpts = append(svcOpts, serve.WithPolicy(routerPolicy))
	// The admission policy only rides along when -policy was given
	// explicitly: a durable restore must adopt the directory's stamped
	// policy, and an explicit flag there acts as a loud assertion
	// (serve.Restore refuses a mismatch).
	policySet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "policy" {
			policySet = true
		}
	})
	admission, err := policy.Parse(*admSpec)
	if err != nil {
		fatal(err)
	}
	if policySet || !restoring(*durable) {
		svcOpts = append(svcOpts, serve.WithAdmissionPolicy(admission))
	}
	if *flushIv > 0 {
		svcOpts = append(svcOpts, serve.WithFlushInterval(*flushIv))
	}

	svc, err := openService(*durable, *shards, *machines, *eps, svcOpts)
	if err != nil {
		fatal(err)
	}

	srvOpts := []netserve.ServerOption{
		netserve.WithServerMetrics(reg),
		netserve.WithWindow(*window),
		netserve.WithMaxInflight(*inflight),
		netserve.WithWriteTimeout(*wtimeout),
		netserve.WithHelloTimeout(*hellotmo),
	}
	if rec != nil {
		srvOpts = append(srvOpts, netserve.WithServerSpans(rec))
	}
	srv, err := netserve.Serve(svc, *addr, srvOpts...)
	if err != nil {
		svc.Close()
		fatal(err)
	}

	build := expo.CollectBuild()
	banner(build, svc, srv, *durable, *adminAddr, rec)

	var admin *expo.Admin
	if *adminAddr != "" {
		admin = expo.NewAdmin(reg,
			expo.WithServerName("loadmaxd"),
			expo.WithBuild(build),
			expo.WithSpans(rec))
		admin.RegisterStatus("service", func() any {
			return map[string]any{
				"addr":          srv.Addr().String(),
				"shards":        svc.Shards(),
				"machines":      svc.Machines(),
				"eps":           svc.Eps(),
				"policy":        svc.AdmissionPolicy(),
				"router":        svc.Policy().Name(),
				"durable_dir":   *durable,
				"accepted_mass": svc.AcceptedMass(),
				"shard_status":  svc.Snapshot(),
			}
		})
		if err := admin.ListenAndServe(*adminAddr); err != nil {
			srv.Close()
			svc.Close()
			fatal(err)
		}
		fmt.Printf("loadmaxd: admin plane on http://%s (/metrics /statusz /healthz /spanz /debug/pprof)\n", admin.Addr())
	}

	stopCkpt := make(chan struct{})
	if *ckptIv > 0 {
		go func() {
			t := time.NewTicker(*ckptIv)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := svc.Checkpoint(); err != nil && !errors.Is(err, serve.ErrClosed) {
						fmt.Fprintln(os.Stderr, "loadmaxd: checkpoint:", err)
					}
				case <-stopCkpt:
					return
				}
			}
		}()
	}
	if *heartbeat > 0 {
		go heartbeatLoop(svc, reg, rec, *heartbeat, stopCkpt)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("loadmaxd: %v — draining\n", s)
	if admin != nil {
		// Flip /healthz first so load balancers stop routing while the
		// drain completes; the admin plane itself stays up for post-drain
		// inspection until exit.
		admin.SetDraining(true)
	}
	close(stopCkpt)

	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "loadmaxd: drain:", err)
	}
	if *durable != "" {
		// Bound the next recovery: snapshot and truncate the logs while
		// the service is still live (Checkpoint rides the shard queues).
		if err := svc.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "loadmaxd: final checkpoint:", err)
		}
	}
	if err := svc.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "loadmaxd: close:", err)
	}
	if admin != nil {
		admin.Close()
	}
	if *metOut != "" {
		if err := writeMetrics(reg, *metOut); err != nil {
			fatal(err)
		}
	}
}

// banner logs the startup identity line: what is running, where, and
// with what resources — the first thing an operator greps for.
func banner(build expo.Build, svc *serve.Service, srv *netserve.Server, durable, adminAddr string, rec *obs.SpanRecorder) {
	commit := build.Commit
	if len(commit) > 12 {
		commit = commit[:12]
	}
	if build.Dirty {
		commit += "-dirty"
	}
	fmt.Printf("loadmaxd: starting %s commit=%s pid=%d gomaxprocs=%d\n",
		build.GoVersion, commit, os.Getpid(), runtime.GOMAXPROCS(0))
	dur := "in-memory"
	if durable != "" {
		dur = "durable dir " + durable
	}
	tracing := "off"
	if rec != nil {
		tracing = fmt.Sprintf("on (slow threshold %v)", rec.SlowThreshold())
	}
	fmt.Printf("loadmaxd: serving %d shards × %d machines (ε=%g, policy=%s, router=%s) on %s — %s, tracing %s\n",
		svc.Shards(), svc.Machines(), svc.Eps(), svc.AdmissionPolicy(), svc.Policy().Name(), srv.Addr(), dur, tracing)
}

// heartbeatLoop logs a one-line service digest every interval: totals,
// accepted mass, deepest queue, connection/in-flight gauges and the
// submit rate since the previous beat.
func heartbeatLoop(svc *serve.Service, reg *obs.Registry, rec *obs.SpanRecorder, interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	var lastSubmitted int64
	lastBeat := time.Now()
	for {
		select {
		case <-t.C:
			var submitted, accepted, rejected, maxDepth int64
			for _, sh := range svc.Snapshot() {
				submitted += sh.Submitted
				accepted += sh.Accepted
				rejected += sh.Rejected
				if d := int64(sh.QueueDepth); d > maxDepth {
					maxDepth = d
				}
			}
			now := time.Now()
			rate := float64(submitted-lastSubmitted) / now.Sub(lastBeat).Seconds()
			lastSubmitted, lastBeat = submitted, now
			snap := reg.Snapshot()
			line := fmt.Sprintf("loadmaxd: submitted=%d accepted=%d rejected=%d mass=%.1f rate=%.0f/s maxq=%d conns=%.0f inflight=%.0f",
				submitted, accepted, rejected, svc.AcceptedMass(), rate, maxDepth,
				snap.Gauges["netserve_connections"], snap.Gauges["netserve_inflight"])
			if rec != nil {
				line += fmt.Sprintf(" slow=%d", rec.SlowCount())
			}
			fmt.Println(line)
		case <-stop:
			return
		}
	}
}

// restoring reports whether dir already holds a durable service (so a
// start will go through serve.Restore and adopt its manifest).
func restoring(dir string) bool {
	if dir == "" {
		return false
	}
	_, err := os.Stat(filepath.Join(dir, "manifest.json"))
	return err == nil
}

// openService restores dir when it already holds a durable service,
// starts a fresh (durable or in-memory) one otherwise.
func openService(dir string, shards, machines int, eps float64, opts []serve.Option) (*serve.Service, error) {
	if dir == "" {
		return serve.New(shards, machines, eps, opts...)
	}
	if restoring(dir) {
		fmt.Printf("loadmaxd: restoring durable service from %s\n", dir)
		return serve.Restore(dir, opts...)
	}
	return serve.New(shards, machines, eps, append(opts, serve.WithDurability(dir))...)
}

func writeMetrics(reg *obs.Registry, path string) error {
	if path == "-" {
		return reg.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadmaxd:", err)
	os.Exit(1)
}
