// Command loadmaxgw is the loadmax cluster gateway: it fronts N
// loadmaxd backends with the same netserve wire protocol the daemons
// themselves speak, routing job-id spaces to backend groups, mirroring
// every decided verdict to a warm standby per group, health-probing the
// backends, and promoting a standby when a primary dies — without
// revoking a single acknowledged commitment.
//
// Usage:
//
//	loadmaxgw -addr :7233 -backends 127.0.0.1:7133/127.0.0.1:7135,127.0.0.1:7137
//	loadmaxgw -router length-class -probe-interval 250ms -fail-threshold 2
//	loadmaxgw -admin 127.0.0.1:7234 -spans
//
// -backends is a comma-separated list of groups, each "primary" or
// "primary/standby". All backends must advertise the same topology
// (machines, ε) and admission policy; the gateway refuses a mixed
// cluster at startup.
//
// With -admin, the ops plane serves the standard /metrics, /statusz
// (with a "gateway" section: groups, roles, health, mirror lag,
// failovers — what `loadmaxctl backends` renders), /healthz, /spanz and
// /debug/pprof, plus POST /drainz?group=N to drain a group's primary
// (promote its standby) without dropping in-flight commitments.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"loadmax/internal/gateway"
	"loadmax/internal/netserve"
	"loadmax/internal/obs"
	"loadmax/internal/obs/expo"
	"loadmax/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":7233", "TCP listen address (\":0\" picks a free port)")
		backends = flag.String("backends", "", "backend groups, comma-separated, each \"primary[/standby]\" (required)")
		router   = flag.String("router", "hash-by-id", "group routing: "+strings.Join(serve.RouterNames(), ", "))

		window   = flag.Int("window", 256, "per-connection in-flight window")
		inflight = flag.Int("max-inflight", 4096, "server-wide in-flight cap before shedding")
		wtimeout = flag.Duration("write-timeout", 10*time.Second, "slow-client disconnect threshold")
		hellotmo = flag.Duration("hello-timeout", 10*time.Second, "handshake deadline: a connection that has not completed HELLO by then is cut")

		probeIv   = flag.Duration("probe-interval", 500*time.Millisecond, "backend HELLO health-probe cadence (0 = disabled)")
		failThr   = flag.Int("fail-threshold", 3, "consecutive probe failures before a primary is failed over")
		mirrorD   = flag.Int("mirror-depth", 256, "max decided batches a standby may lag before new intake sheds")
		intakeD   = flag.Int("intake-depth", 1024, "per-group pending-submission queue depth")
		callTmo   = flag.Duration("call-timeout", 30*time.Second, "backend round-trip deadline; exceeding it triggers failover")
		dialTmo   = flag.Duration("dial-timeout", 5*time.Second, "backend dial + probe deadline")
		metOut    = flag.String("metrics-out", "", "write a JSON metrics snapshot here on shutdown (\"-\" = stdout)")
		adminAddr = flag.String("admin", "", "admin HTTP listen address (empty = disabled)")
		spans     = flag.Bool("spans", false, "trace request lifecycles into per-stage histograms and the /spanz ring")
		slowThr   = flag.Duration("slow-threshold", time.Second, "log requests slower than this (0 = disabled; requires -spans)")
		spanRing  = flag.Int("span-ring", 512, "finished-span ring capacity for /spanz (requires -spans)")
		heartbeat = flag.Duration("heartbeat", time.Minute, "periodic one-line stats log interval (0 = disabled)")
	)
	flag.Parse()

	specs, err := parseBackends(*backends)
	if err != nil {
		fatal(err)
	}
	routerPolicy, err := serve.ParseRouter(*router)
	if err != nil {
		fatal(err)
	}

	reg := obs.NewRegistry()
	var rec *obs.SpanRecorder
	if *spans {
		rec = obs.NewSpanRecorder(reg,
			obs.WithSpanRing(*spanRing),
			obs.WithSlowThreshold(*slowThr))
	}

	gwOpts := []gateway.Option{
		gateway.WithRouter(routerPolicy),
		gateway.WithMetrics(reg),
		gateway.WithProbeInterval(*probeIv),
		gateway.WithFailThreshold(*failThr),
		gateway.WithMirrorDepth(*mirrorD),
		gateway.WithIntakeDepth(*intakeD),
		gateway.WithCallTimeout(*callTmo),
		gateway.WithDialTimeout(*dialTmo),
	}
	if rec != nil {
		gwOpts = append(gwOpts, gateway.WithSpans(rec))
	}
	gw, err := gateway.New(specs, gwOpts...)
	if err != nil {
		fatal(err)
	}

	srvOpts := []netserve.ServerOption{
		netserve.WithServerMetrics(reg),
		netserve.WithWindow(*window),
		netserve.WithMaxInflight(*inflight),
		netserve.WithWriteTimeout(*wtimeout),
		netserve.WithHelloTimeout(*hellotmo),
	}
	if rec != nil {
		srvOpts = append(srvOpts, netserve.WithServerSpans(rec))
	}
	srv, err := netserve.Serve(gw, *addr, srvOpts...)
	if err != nil {
		gw.Close()
		fatal(err)
	}

	build := expo.CollectBuild()
	banner(build, gw, srv.Addr().String(), rec)

	var admin *expo.Admin
	var adminSrv *http.Server
	if *adminAddr != "" {
		admin = expo.NewAdmin(reg,
			expo.WithServerName("loadmaxgw"),
			expo.WithBuild(build),
			expo.WithSpans(rec))
		admin.RegisterStatus("gateway", func() any { return gw.Status() })
		// The gateway adds one operator verb the stock plane lacks:
		// POST /drainz?group=N promotes group N's standby and retires
		// its primary, with every in-flight commitment honored.
		mux := http.NewServeMux()
		mux.Handle("/", admin.Handler())
		mux.HandleFunc("/drainz", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			gi, err := strconv.Atoi(r.URL.Query().Get("group"))
			if err != nil {
				http.Error(w, "need ?group=N", http.StatusBadRequest)
				return
			}
			if err := gw.DrainBackend(gi); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			fmt.Fprintf(w, "group %d drained: standby promoted\n", gi)
		})
		adminSrv = &http.Server{Addr: *adminAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		ln, err := listen(adminSrv)
		if err != nil {
			srv.Close()
			gw.Close()
			fatal(err)
		}
		fmt.Printf("loadmaxgw: admin plane on http://%s (/metrics /statusz /healthz /spanz /drainz /debug/pprof)\n", ln)
	}

	stop := make(chan struct{})
	if *heartbeat > 0 {
		go heartbeatLoop(gw, reg, *heartbeat, stop)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("loadmaxgw: %v — draining\n", s)
	if admin != nil {
		admin.SetDraining(true)
	}
	close(stop)
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "loadmaxgw: drain:", err)
	}
	if err := gw.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "loadmaxgw: close:", err)
	}
	if adminSrv != nil {
		adminSrv.Close()
	}
	if *metOut != "" {
		if err := writeMetrics(reg, *metOut); err != nil {
			fatal(err)
		}
	}
}

// parseBackends splits "p1[/s1],p2[/s2],..." into group specs.
func parseBackends(s string) ([]gateway.BackendSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-backends is required (comma-separated \"primary[/standby]\" groups)")
	}
	var specs []gateway.BackendSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		pr, sb, _ := strings.Cut(part, "/")
		pr, sb = strings.TrimSpace(pr), strings.TrimSpace(sb)
		if pr == "" {
			return nil, fmt.Errorf("backend group %q has no primary", part)
		}
		specs = append(specs, gateway.BackendSpec{Primary: pr, Standby: sb})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-backends lists no groups")
	}
	return specs, nil
}

// listen binds the admin server's address and serves in the background,
// returning the resolved address.
func listen(srv *http.Server) (string, error) {
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		return "", err
	}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	return ln.Addr().String(), nil
}

func banner(build expo.Build, gw *gateway.Gateway, addr string, rec *obs.SpanRecorder) {
	commit := build.Commit
	if len(commit) > 12 {
		commit = commit[:12]
	}
	if build.Dirty {
		commit += "-dirty"
	}
	fmt.Printf("loadmaxgw: starting %s commit=%s pid=%d gomaxprocs=%d\n",
		build.GoVersion, commit, os.Getpid(), runtime.GOMAXPROCS(0))
	st := gw.Status()
	standbys := 0
	for _, g := range st.Groups {
		for _, b := range g.Backends {
			if b.Role == gateway.RoleStandby {
				standbys++
			}
		}
	}
	tracing := "off"
	if rec != nil {
		tracing = fmt.Sprintf("on (slow threshold %v)", rec.SlowThreshold())
	}
	fmt.Printf("loadmaxgw: fronting %d groups (%d standbys) × %d machines (ε=%g, policy=%s, router=%s) on %s — tracing %s\n",
		len(st.Groups), standbys, gw.Machines(), gw.Eps(), gw.AdmissionPolicy(), gw.Router(), addr, tracing)
}

// heartbeatLoop logs a one-line cluster digest every interval.
func heartbeatLoop(gw *gateway.Gateway, reg *obs.Registry, interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	var lastDecided int64
	lastBeat := time.Now()
	for {
		select {
		case <-t.C:
			st := gw.Status()
			healthy, lag, failovers := 0, int64(0), int64(0)
			for _, g := range st.Groups {
				lag += g.MirrorLagJobs
				failovers += g.Failovers
				for _, b := range g.Backends {
					if b.Healthy && (b.Role == gateway.RolePrimary || b.Role == gateway.RoleStandby) {
						healthy++
					}
				}
			}
			now := time.Now()
			rate := float64(st.Decided-lastDecided) / now.Sub(lastBeat).Seconds()
			lastDecided, lastBeat = st.Decided, now
			snap := reg.Snapshot()
			fmt.Printf("loadmaxgw: decided=%d rate=%.0f/s healthy=%d mirror_lag=%d failovers=%d conns=%.0f\n",
				st.Decided, rate, healthy, lag, failovers, snap.Gauges["netserve_connections"])
		case <-stop:
			return
		}
	}
}

func writeMetrics(reg *obs.Registry, path string) error {
	if path == "-" {
		return reg.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadmaxgw:", err)
	os.Exit(1)
}
