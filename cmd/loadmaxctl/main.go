// Command loadmaxctl queries a live loadmaxd's admin plane (-admin on
// the daemon).
//
// Usage:
//
//	loadmaxctl [-admin host:port] [-timeout d] <command>
//
//	status            pretty-print /statusz (process, build, shard state)
//	metrics [-grep re] dump /metrics (Prometheus text), optionally filtered
//	                  to lines matching the regular expression re
//	slow              table of slow-request spans from /spanz?slow=1
//	spans             table of recent request spans from /spanz
//	health            hit /healthz; exit 0 healthy, 1 draining/down
//	backends          table of a loadmaxgw's backend groups: roles,
//	                  health, mirror lag, failovers (reads the gateway
//	                  section of /statusz)
//
// Examples:
//
//	loadmaxctl -admin 127.0.0.1:7134 status
//	loadmaxctl -admin 127.0.0.1:7134 metrics -grep span_stage
//	loadmaxctl -admin 127.0.0.1:7134 slow
//	loadmaxctl -admin 127.0.0.1:7234 backends
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strings"
	"time"
)

func main() {
	admin := flag.String("admin", "127.0.0.1:7134", "loadmaxd admin address")
	timeout := flag.Duration("timeout", 5*time.Second, "request timeout")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: loadmaxctl [-admin host:port] [-timeout d] status|metrics|slow|spans|health|backends")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	c := &client{base: "http://" + *admin, http: &http.Client{Timeout: *timeout}}

	var err error
	switch cmd := flag.Arg(0); cmd {
	case "status":
		err = c.status()
	case "metrics":
		var re *regexp.Regexp
		re, err = parseMetricsArgs(flag.Args()[1:])
		if err == nil {
			err = c.metrics(re)
		}
	case "slow":
		err = c.spans(true)
	case "spans":
		err = c.spans(false)
	case "health":
		err = c.health()
	case "backends":
		err = c.backends()
	default:
		fmt.Fprintf(os.Stderr, "loadmaxctl: unknown command %q\n", cmd)
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadmaxctl:", err)
		os.Exit(1)
	}
}

type client struct {
	base string
	http *http.Client
}

func (c *client) get(path string) ([]byte, int, error) {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return body, resp.StatusCode, err
}

func (c *client) status() error {
	body, code, err := c.get("/statusz")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("statusz: HTTP %d: %s", code, strings.TrimSpace(string(body)))
	}
	os.Stdout.Write(body)
	return nil
}

// parseMetricsArgs parses the metrics subcommand's flags. -grep is a
// regular expression (RE2); an invalid pattern is rejected here, before
// any network traffic, with an error that names the pattern — the caller
// turns that into a non-zero exit. A nil, nil return means "no filter".
func parseMetricsArgs(args []string) (*regexp.Regexp, error) {
	grep := ""
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	fs.StringVar(&grep, "grep", "", "only print lines matching this regular expression")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if rest := fs.Args(); len(rest) > 0 {
		return nil, fmt.Errorf("metrics: unexpected argument %q", rest[0])
	}
	if grep == "" {
		return nil, nil
	}
	re, err := regexp.Compile(grep)
	if err != nil {
		return nil, fmt.Errorf("metrics: invalid -grep pattern %q: %w", grep, err)
	}
	return re, nil
}

// filterMetrics keeps the lines of a Prometheus text dump that match re
// (nil means keep everything). Split on \n so a trailing newline does
// not produce a spurious empty match.
func filterMetrics(body []byte, re *regexp.Regexp) []string {
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if re == nil {
		return lines
	}
	out := lines[:0]
	for _, line := range lines {
		if re.MatchString(line) {
			out = append(out, line)
		}
	}
	return out
}

func (c *client) metrics(re *regexp.Regexp) error {
	body, code, err := c.get("/metrics")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("metrics: HTTP %d", code)
	}
	if re == nil {
		os.Stdout.Write(body)
		return nil
	}
	for _, line := range filterMetrics(body, re) {
		fmt.Println(line)
	}
	return nil
}

// spanView mirrors obs.SpanView's JSON; kept local so the CLI depends
// only on the wire contract, not the internal package.
type spanView struct {
	JobID   int64            `json:"job"`
	Shard   int32            `json:"shard"`
	Verdict string           `json:"verdict"`
	TotalNs int64            `json:"total_ns"`
	Stages  map[string]int64 `json:"stages_ns"`
}

func (c *client) spans(slowOnly bool) error {
	path := "/spanz"
	if slowOnly {
		path += "?slow=1"
	}
	body, code, err := c.get(path)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("spanz: HTTP %d", code)
	}
	var out struct {
		Recent []spanView `json:"recent"`
		Slow   []spanView `json:"slow"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return fmt.Errorf("spanz: %w", err)
	}
	spans := out.Slow
	kind := "slow"
	if !slowOnly {
		spans = out.Recent
		kind = "recent"
	}
	if len(spans) == 0 {
		fmt.Printf("no %s spans (daemon running with -spans?)\n", kind)
		return nil
	}
	printSpanTable(spans)
	return nil
}

func printSpanTable(spans []spanView) {
	fmt.Printf("%10s %5s %-7s %12s  %s\n", "JOB", "SHARD", "VERDICT", "TOTAL", "STAGES")
	for _, sp := range spans {
		names := make([]string, 0, len(sp.Stages))
		for name := range sp.Stages {
			names = append(names, name)
		}
		sort.Slice(names, func(a, b int) bool { return sp.Stages[names[a]] > sp.Stages[names[b]] })
		parts := make([]string, len(names))
		for i, name := range names {
			parts[i] = fmt.Sprintf("%s=%v", name, time.Duration(sp.Stages[name]))
		}
		fmt.Printf("%10d %5d %-7s %12v  %s\n",
			sp.JobID, sp.Shard, sp.Verdict, time.Duration(sp.TotalNs), strings.Join(parts, " "))
	}
}

// gwStatus mirrors the gateway section of a loadmaxgw /statusz; kept
// local so the CLI depends only on the wire contract.
type gwStatus struct {
	Router  string    `json:"router"`
	Policy  string    `json:"policy"`
	Decided int64     `json:"decided_jobs"`
	Groups  []gwGroup `json:"groups"`
}

type gwGroup struct {
	Group          int         `json:"group"`
	State          string      `json:"state"`
	MirrorLagJobs  int64       `json:"mirror_lag_jobs"`
	Failovers      int64       `json:"failovers"`
	LastFailoverMs float64     `json:"last_failover_ms"`
	Diverged       bool        `json:"diverged"`
	Backends       []gwBackend `json:"backends"`
}

type gwBackend struct {
	Addr    string `json:"addr"`
	Role    string `json:"role"`
	Healthy bool   `json:"healthy"`
	Jobs    int64  `json:"jobs"`
}

func (c *client) backends() error {
	body, code, err := c.get("/statusz")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("statusz: HTTP %d: %s", code, strings.TrimSpace(string(body)))
	}
	var out struct {
		Gateway *gwStatus `json:"gateway"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return fmt.Errorf("statusz: %w", err)
	}
	if out.Gateway == nil {
		return fmt.Errorf("no gateway section in /statusz — is -admin pointing at a loadmaxgw (not a loadmaxd)?")
	}
	fmt.Print(renderBackends(*out.Gateway))
	return nil
}

// renderBackends formats the cluster table: a header line with the
// cluster-wide identity, then one row per backend grouped by routing
// group.
func renderBackends(st gwStatus) string {
	var b strings.Builder
	fmt.Fprintf(&b, "router=%s policy=%s decided=%d groups=%d\n",
		st.Router, st.Policy, st.Decided, len(st.Groups))
	fmt.Fprintf(&b, "%5s %-12s %-22s %-8s %-9s %10s %9s %9s\n",
		"GROUP", "STATE", "ADDR", "ROLE", "HEALTH", "JOBS", "MIRRORLAG", "FAILOVERS")
	for _, g := range st.Groups {
		state := g.State
		if g.Diverged {
			state += "!diverged"
		}
		for i, be := range g.Backends {
			health := "down"
			if be.Healthy {
				health = "ok"
			}
			if i == 0 {
				fmt.Fprintf(&b, "%5d %-12s %-22s %-8s %-9s %10d %9d %9d\n",
					g.Group, state, be.Addr, be.Role, health, be.Jobs, g.MirrorLagJobs, g.Failovers)
			} else {
				fmt.Fprintf(&b, "%5s %-12s %-22s %-8s %-9s %10d %9s %9s\n",
					"", "", be.Addr, be.Role, health, be.Jobs, "", "")
			}
		}
	}
	return b.String()
}

func (c *client) health() error {
	body, code, err := c.get("/healthz")
	if err != nil {
		return err
	}
	fmt.Print(string(body))
	if code != http.StatusOK {
		os.Exit(1)
	}
	return nil
}
