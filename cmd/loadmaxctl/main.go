// Command loadmaxctl queries a live loadmaxd's admin plane (-admin on
// the daemon).
//
// Usage:
//
//	loadmaxctl [-admin host:port] [-timeout d] <command>
//
//	status            pretty-print /statusz (process, build, shard state)
//	metrics [-grep s] dump /metrics (Prometheus text), optionally filtered
//	slow              table of slow-request spans from /spanz?slow=1
//	spans             table of recent request spans from /spanz
//	health            hit /healthz; exit 0 healthy, 1 draining/down
//
// Examples:
//
//	loadmaxctl -admin 127.0.0.1:7134 status
//	loadmaxctl -admin 127.0.0.1:7134 metrics -grep span_stage
//	loadmaxctl -admin 127.0.0.1:7134 slow
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	admin := flag.String("admin", "127.0.0.1:7134", "loadmaxd admin address")
	timeout := flag.Duration("timeout", 5*time.Second, "request timeout")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: loadmaxctl [-admin host:port] [-timeout d] status|metrics|slow|spans|health")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	c := &client{base: "http://" + *admin, http: &http.Client{Timeout: *timeout}}

	var err error
	switch cmd := flag.Arg(0); cmd {
	case "status":
		err = c.status()
	case "metrics":
		grep := ""
		fs := flag.NewFlagSet("metrics", flag.ExitOnError)
		fs.StringVar(&grep, "grep", "", "only print lines containing this substring")
		fs.Parse(flag.Args()[1:])
		err = c.metrics(grep)
	case "slow":
		err = c.spans(true)
	case "spans":
		err = c.spans(false)
	case "health":
		err = c.health()
	default:
		fmt.Fprintf(os.Stderr, "loadmaxctl: unknown command %q\n", cmd)
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadmaxctl:", err)
		os.Exit(1)
	}
}

type client struct {
	base string
	http *http.Client
}

func (c *client) get(path string) ([]byte, int, error) {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return body, resp.StatusCode, err
}

func (c *client) status() error {
	body, code, err := c.get("/statusz")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("statusz: HTTP %d: %s", code, strings.TrimSpace(string(body)))
	}
	os.Stdout.Write(body)
	return nil
}

func (c *client) metrics(grep string) error {
	body, code, err := c.get("/metrics")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("metrics: HTTP %d", code)
	}
	if grep == "" {
		os.Stdout.Write(body)
		return nil
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.Contains(line, grep) {
			fmt.Println(line)
		}
	}
	return nil
}

// spanView mirrors obs.SpanView's JSON; kept local so the CLI depends
// only on the wire contract, not the internal package.
type spanView struct {
	JobID   int64            `json:"job"`
	Shard   int32            `json:"shard"`
	Verdict string           `json:"verdict"`
	TotalNs int64            `json:"total_ns"`
	Stages  map[string]int64 `json:"stages_ns"`
}

func (c *client) spans(slowOnly bool) error {
	path := "/spanz"
	if slowOnly {
		path += "?slow=1"
	}
	body, code, err := c.get(path)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("spanz: HTTP %d", code)
	}
	var out struct {
		Recent []spanView `json:"recent"`
		Slow   []spanView `json:"slow"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return fmt.Errorf("spanz: %w", err)
	}
	spans := out.Slow
	kind := "slow"
	if !slowOnly {
		spans = out.Recent
		kind = "recent"
	}
	if len(spans) == 0 {
		fmt.Printf("no %s spans (daemon running with -spans?)\n", kind)
		return nil
	}
	printSpanTable(spans)
	return nil
}

func printSpanTable(spans []spanView) {
	fmt.Printf("%10s %5s %-7s %12s  %s\n", "JOB", "SHARD", "VERDICT", "TOTAL", "STAGES")
	for _, sp := range spans {
		names := make([]string, 0, len(sp.Stages))
		for name := range sp.Stages {
			names = append(names, name)
		}
		sort.Slice(names, func(a, b int) bool { return sp.Stages[names[a]] > sp.Stages[names[b]] })
		parts := make([]string, len(names))
		for i, name := range names {
			parts[i] = fmt.Sprintf("%s=%v", name, time.Duration(sp.Stages[name]))
		}
		fmt.Printf("%10d %5d %-7s %12v  %s\n",
			sp.JobID, sp.Shard, sp.Verdict, time.Duration(sp.TotalNs), strings.Join(parts, " "))
	}
}

func (c *client) health() error {
	body, code, err := c.get("/healthz")
	if err != nil {
		return err
	}
	fmt.Print(string(body))
	if code != http.StatusOK {
		os.Exit(1)
	}
	return nil
}
