package main

import (
	"regexp"
	"strings"
	"testing"
)

// TestParseMetricsArgs table-tests the metrics subcommand's arg parsing:
// valid regexes compile, an empty -grep means "no filter", and invalid
// patterns or stray positional arguments are rejected with a clear error
// (which main turns into a non-zero exit) instead of a panic or a silent
// empty match.
func TestParseMetricsArgs(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantNil bool   // expect a nil (pass-through) filter
		match   string // a line the compiled filter must match
		miss    string // a line it must not match
		wantErr string // substring of the expected error
	}{
		{name: "no flags", args: nil, wantNil: true},
		{name: "empty grep", args: []string{"-grep", ""}, wantNil: true},
		{name: "literal", args: []string{"-grep", "span_stage"},
			match: `span_stage_ns{stage="wal"} 12`, miss: `submit_total 9`},
		{name: "anchored", args: []string{"-grep", "^# HELP"},
			match: "# HELP submit_total count", miss: "submit_total 9 # HELP trailing"},
		{name: "alternation", args: []string{"-grep", "wal|shard"},
			match: `shard_depth{shard="1"} 3`, miss: "uptime_seconds 4"},
		{name: "escaped meta", args: []string{"-grep", `submit_total\{`},
			match: `submit_total{shard="0"} 7`, miss: "submit_total 7"},
		{name: "invalid regex", args: []string{"-grep", "["},
			wantErr: "invalid -grep pattern"},
		{name: "invalid repeat", args: []string{"-grep", "*x"},
			wantErr: "invalid -grep pattern"},
		{name: "unknown flag", args: []string{"-pattern", "x"},
			wantErr: "flag provided but not defined"},
		{name: "stray positional", args: []string{"-grep", "x", "extra"},
			wantErr: "unexpected argument"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			re, err := parseMetricsArgs(tc.args)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("parseMetricsArgs(%q) err = %v, want error containing %q", tc.args, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseMetricsArgs(%q): %v", tc.args, err)
			}
			if tc.wantNil {
				if re != nil {
					t.Fatalf("parseMetricsArgs(%q) = %v, want nil filter", tc.args, re)
				}
				return
			}
			if re == nil {
				t.Fatalf("parseMetricsArgs(%q) returned nil filter, want a compiled regexp", tc.args)
			}
			if !re.MatchString(tc.match) {
				t.Errorf("filter %q should match %q", re, tc.match)
			}
			if tc.miss != "" && re.MatchString(tc.miss) {
				t.Errorf("filter %q should not match %q", re, tc.miss)
			}
		})
	}
}

// TestFilterMetrics covers the line filter itself, including the
// trailing-newline edge (no spurious empty line) and nil pass-through.
func TestFilterMetrics(t *testing.T) {
	body := []byte("# HELP submit_total count\nsubmit_total 9\nshard_depth 3\n")
	re, err := parseMetricsArgs([]string{"-grep", "^submit"})
	if err != nil {
		t.Fatal(err)
	}
	got := filterMetrics(body, re)
	if len(got) != 1 || got[0] != "submit_total 9" {
		t.Fatalf("filterMetrics = %q, want just the submit_total sample", got)
	}
	if all := filterMetrics(body, nil); len(all) != 3 {
		t.Fatalf("nil filter kept %d lines, want 3 (no trailing empty)", len(all))
	}
	if none := filterMetrics(body, mustCompile(t, "nomatch")); len(none) != 0 {
		t.Fatalf("non-matching filter kept %q, want none", none)
	}
}

func mustCompile(t *testing.T, pat string) *regexp.Regexp {
	t.Helper()
	re, err := parseMetricsArgs([]string{"-grep", pat})
	if err != nil {
		t.Fatal(err)
	}
	return re
}

// TestRenderBackends pins the backends table: cluster identity header,
// one row per backend with group columns only on the group's first row,
// and a loud diverged marker — the operator's one-glance failover view.
func TestRenderBackends(t *testing.T) {
	st := gwStatus{
		Router:  "hash-by-id",
		Policy:  "delta-commit:delta=0.5",
		Decided: 1234,
		Groups: []gwGroup{
			{
				Group: 0, State: "degraded", MirrorLagJobs: 0, Failovers: 1,
				Backends: []gwBackend{
					{Addr: "127.0.0.1:7135", Role: "primary", Healthy: true, Jobs: 700},
					{Addr: "127.0.0.1:7133", Role: "dead", Healthy: false, Jobs: 300},
				},
			},
			{
				Group: 1, State: "active", MirrorLagJobs: 7, Diverged: true,
				Backends: []gwBackend{
					{Addr: "127.0.0.1:7137", Role: "primary", Healthy: true, Jobs: 234},
				},
			},
		},
	}
	got := renderBackends(st)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 5 { // header + columns + 3 backend rows
		t.Fatalf("renderBackends produced %d lines, want 5:\n%s", len(lines), got)
	}
	if !strings.Contains(lines[0], "router=hash-by-id") || !strings.Contains(lines[0], "decided=1234") {
		t.Errorf("header line missing identity: %q", lines[0])
	}
	for want, line := range map[string]string{
		"primary": lines[2], "dead": lines[3], "active!diverged": lines[4],
	} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	// Group columns appear once per group: the second backend row of
	// group 0 must not repeat the group id or state.
	if strings.Contains(lines[3], "degraded") {
		t.Errorf("continuation row repeats group state: %q", lines[3])
	}
}
