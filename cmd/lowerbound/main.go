// Command lowerbound plays the Section-3 adversary against an online
// scheduler and prints the game trace, the realized competitive ratio and
// the Figure-3 schedules; -tree explores the full Figure-2 decision tree.
//
// Usage:
//
//	lowerbound -m 3 -eps 0.27                 # the paper's Fig. 2/3 setting
//	lowerbound -m 4 -eps 0.05 -algo greedy    # watch greedy pay 2+1/eps
//	lowerbound -m 3 -eps 0.27 -tree           # every decision path
package main

import (
	"flag"
	"fmt"
	"os"

	"strings"

	"loadmax/internal/adversary"
	"loadmax/internal/cli"
	"loadmax/internal/obs"
	"loadmax/internal/ratio"
	"loadmax/internal/report"
	"loadmax/internal/svgplot"
	"loadmax/internal/textplot"
)

func main() {
	var (
		m    = flag.Int("m", 3, "number of machines")
		eps  = flag.Float64("eps", 0.27, "slack ε ∈ (0,1]")
		algo = flag.String("algo", "threshold", "algorithm: "+strings.Join(cli.AlgorithmNames(), "|"))
		beta = flag.Float64("beta", adversary.DefaultBeta, "Lemma-1 overlap-interval length β")
		tree = flag.Bool("tree", false, "explore the full decision tree (Figure 2)")
		svg  = flag.String("svg", "", "write the Fig.-3 schedules as SVG to this file prefix (<prefix>-online.svg, <prefix>-opt.svg)")

		trace  = flag.String("trace", "", "write the scheduler's JSONL decision trace of the game to this file (\"-\" = stdout; threshold schedulers only)")
		metOut = flag.String("metrics-out", "", "write a JSON snapshot of the game metrics to this file (\"-\" = stdout)")
	)
	flag.Parse()

	params, err := ratio.Compute(*eps, *m)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("setting: m=%d eps=%g → phase k=%d, c(eps,m)=%.6f\n\n", *m, *eps, params.K, params.C)

	if *tree {
		tr, err := adversary.Explore(*eps, *m, *beta)
		if err != nil {
			fatal(err)
		}
		t := report.NewTable("decision-tree leaves (Figure 2)",
			"u", "h", "ALG load", "OPT load", "ratio")
		for _, l := range tr.Leaves {
			h := "-"
			if l.H > 0 {
				h = fmt.Sprintf("%d", l.H)
			}
			t.Addf(l.U, h, l.ALGLoad, l.OPTLoad, l.Ratio)
		}
		t.Note("minimum ratio %.6f vs c(eps,m) = %.6f — Theorem 1", tr.MinRatio, params.C)
		t.WriteText(os.Stdout)
		return
	}

	sched, err := cli.NewScheduler(*algo, *m, *eps, 1)
	if err != nil {
		fatal(err)
	}

	cfg := adversary.Config{Beta: *beta}
	if *metOut != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	var sink obs.Sink
	if *trace != "" {
		if tr, ok := sched.(obs.Traceable); ok {
			if sink, err = cli.OpenTraceSink(*trace, 1); err != nil {
				fatal(err)
			}
			tr.SetTracer(sink)
		} else {
			fmt.Fprintf(os.Stderr, "lowerbound: -trace ignored: %s does not emit decision traces\n", sched.Name())
		}
	}

	out, err := adversary.Run(sched, *eps, cfg)
	if sink != nil {
		if cerr := obs.CloseSink(sink); cerr != nil {
			fatal(cerr)
		}
	}
	if err != nil {
		fatal(err)
	}
	if cfg.Metrics != nil {
		if err := cli.WriteMetricsSnapshot(*metOut, cfg.Metrics); err != nil {
			fatal(err)
		}
	}
	if out.Unbounded {
		fmt.Println("the scheduler rejected J_1: competitive ratio unbounded")
		return
	}

	t := report.NewTable(fmt.Sprintf("game trace vs %s", sched.Name()),
		"step", "phase", "subphase", "job (r, p, d)", "decision")
	for i, st := range out.Steps {
		t.Addf(i+1, st.Phase, st.Subphase,
			fmt.Sprintf("(%.6g, %.6g, %.6g)", st.Job.Release, st.Job.Proc, st.Job.Deadline),
			st.Decision.String())
	}
	t.WriteText(os.Stdout)
	fmt.Printf("\nphase 2 stopped at u=%d, phase 3 at h=%d\n", out.U, out.H)
	fmt.Printf("ALG load %.6f, OPT load %.6f → realized ratio %.6f (c = %.6f)\n\n",
		out.ALGLoad, out.OPTLoad, out.Ratio, params.C)

	var algSlots []textplot.GanttSlot
	for _, st := range out.Steps {
		if st.Decision.Accepted {
			algSlots = append(algSlots, textplot.GanttSlot{
				Machine: st.Decision.Machine, Start: st.Decision.Start,
				End: st.Decision.Start + st.Job.Proc, Label: fmt.Sprintf("J%d", st.Job.ID),
			})
		}
	}
	fmt.Print(textplot.Gantt("online schedule (Fig. 3 top)", *m, algSlots, 90))
	fmt.Println()
	var optSlots []textplot.GanttSlot
	for _, sl := range out.OPTSchedule.Slots() {
		optSlots = append(optSlots, textplot.GanttSlot{
			Machine: sl.Machine, Start: sl.Start, End: sl.End(),
			Label: fmt.Sprintf("J%d", sl.Job.ID),
		})
	}
	fmt.Print(textplot.Gantt("optimal schedule (Fig. 3 bottom)", *m, optSlots, 90))

	if *svg != "" {
		var a, o []svgplot.GanttSlot
		for _, s := range algSlots {
			a = append(a, svgplot.GanttSlot{Machine: s.Machine, Start: s.Start, End: s.End, Label: s.Label})
		}
		for _, s := range optSlots {
			o = append(o, svgplot.GanttSlot{Machine: s.Machine, Start: s.Start, End: s.End, Label: s.Label})
		}
		writeSVG(*svg+"-online.svg", svgplot.Gantt("online schedule (Fig. 3 top)", *m, a, 760))
		writeSVG(*svg+"-opt.svg", svgplot.Gantt("optimal schedule (Fig. 3 bottom)", *m, o, 760))
	}
}

func writeSVG(path, doc string) {
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "[svg written to %s]\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lowerbound:", err)
	os.Exit(1)
}
