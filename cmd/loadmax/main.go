// Command loadmax runs an online scheduler over a job instance — from a
// JSON/CSV file or a synthetic generator — and reports the accepted load,
// the offline-optimum bounds and the measured competitive ratio.
//
// Usage:
//
//	loadmax -m 4 -eps 0.1 -gen bimodal -n 200 -seed 7
//	loadmax -m 2 -eps 0.3 -in jobs.csv -gantt
//	loadmax -m 4 -eps 0.1 -algo greedy -gen pareto -n 500
//	loadmax -m 4 -eps 0.1 -trace trace.jsonl -metrics-out metrics.json
//	loadmax -m 8 -eps 0.1 -n 100000 -pprof run   # run.cpu.pprof + run.heap.pprof
//
// Algorithms: see -algo help text (threshold is the paper's Algorithm 1).
// Observability: -trace explains every accept/reject decision as one JSON
// line (threshold terms, d_lim, phase, allocation — see README.md for the
// schema); -metrics-out snapshots run-level counters and latencies.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"loadmax/internal/analysis"
	"loadmax/internal/cli"
	"loadmax/internal/obs"
	"loadmax/internal/offline"
	"loadmax/internal/sim"
	"loadmax/internal/textplot"
	"loadmax/internal/workload"
)

func main() {
	var (
		m      = flag.Int("m", 2, "number of machines")
		eps    = flag.Float64("eps", 0.1, "slack ε (threshold needs (0,1]; greedy accepts any > 0)")
		algo   = flag.String("algo", "threshold", "algorithm: "+strings.Join(cli.AlgorithmNames(), "|"))
		inFile = flag.String("in", "", "instance file (.json or .csv); overrides -gen")
		gen    = flag.String("gen", "poisson", "workload family")
		n      = flag.Int("n", 100, "generated instance size")
		load   = flag.Float64("load", 1.5, "generated offered load per machine")
		seed   = flag.Int64("seed", 1, "generator / RNG seed")
		gantt  = flag.Bool("gantt", false, "print the committed schedule as a Gantt chart")
		stat   = flag.Bool("stats", false, "print run diagnostics (utilization, rejection breakdown)")
		optN   = flag.Int("exact-limit", offline.ExactLimit, "max n for the exact offline solver")

		trace    = flag.String("trace", "", "write a JSONL decision trace to this file (\"-\" = stdout; threshold schedulers only)")
		sample   = flag.Int("trace-sample", 1, "with -trace, keep 1 in N events")
		metOut   = flag.String("metrics-out", "", "write a JSON metrics snapshot to this file (\"-\" = stdout)")
		pprofPfx = flag.String("pprof", "", "capture profiles to <prefix>.cpu.pprof and <prefix>.heap.pprof")
	)
	flag.Parse()

	inst, err := cli.LoadInstance(*inFile, *gen, workload.Spec{
		N: *n, Eps: *eps, M: *m, Load: *load, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	sched, err := cli.NewScheduler(*algo, *m, *eps, *seed)
	if err != nil {
		fatal(err)
	}

	var runOpts []sim.RunOption
	var reg *obs.Registry
	if *metOut != "" {
		reg = obs.NewRegistry()
		runOpts = append(runOpts, sim.WithMetrics(reg))
	}
	var sink obs.Sink
	if *trace != "" {
		sink, err = cli.OpenTraceSink(*trace, *sample)
		if err != nil {
			fatal(err)
		}
		runOpts = append(runOpts, sim.WithTrace(sink))
	}
	var stopProf func() error
	if *pprofPfx != "" {
		stopProf, err = obs.StartProfiling(*pprofPfx)
		if err != nil {
			fatal(err)
		}
	}

	res, err := sim.Run(sched, inst, runOpts...)
	if err != nil {
		fatal(err)
	}
	if stopProf != nil {
		if err := stopProf(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[profiles written to %s.cpu.pprof and %s.heap.pprof]\n", *pprofPfx, *pprofPfx)
	}
	if sink != nil {
		if err := obs.CloseSink(sink); err != nil {
			fatal(err)
		}
	}
	if reg != nil {
		if err := cli.WriteMetricsSnapshot(*metOut, reg); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("algorithm   : %s on %d machine(s), slack eps=%g\n", res.Scheduler, res.Machines, *eps)
	fmt.Printf("instance    : %d jobs, total load %.4g, min slack %.4g\n",
		res.Submitted, res.TotalLoad, inst.MinSlack())
	fmt.Printf("accepted    : %d jobs (%.1f%%), load %.4g (%.1f%% of total)\n",
		res.Accepted, 100*res.AcceptanceRate(), res.Load, 100*res.LoadFraction())
	for _, v := range res.Violations {
		fmt.Printf("VIOLATION   : %s\n", v)
	}

	b := offline.ComputeBounds(inst, res.Machines, *optN)
	kind := "bounded"
	if b.Exact {
		kind = "exact"
	}
	fmt.Printf("offline OPT : [%.4g, %.4g] (%s)\n", b.Lower, b.Upper, kind)
	if res.Load > 0 {
		fmt.Printf("ratio       : %.4g (OPT upper bound / accepted load)\n", b.Upper/res.Load)
	}

	if *stat {
		rep, err := analysis.Analyze(inst, res)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\ndiagnostics :\n%s\n", indent(rep.String()))
	}

	if *gantt {
		var slots []textplot.GanttSlot
		for _, sl := range res.Schedule.Slots() {
			slots = append(slots, textplot.GanttSlot{
				Machine: sl.Machine, Start: sl.Start, End: sl.End(),
				Label: fmt.Sprintf("J%d", sl.Job.ID),
			})
		}
		fmt.Println()
		fmt.Print(textplot.Gantt("committed schedule", res.Machines, slots, 100))
	}
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadmax:", err)
	os.Exit(1)
}
