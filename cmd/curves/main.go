// Command curves regenerates the data behind Figure 1: the tight
// competitive-ratio function c(ε,m) over ε ∈ (0,1] for a list of machine
// counts, with the phase-transition corner values.
//
// Usage:
//
//	curves                    # ASCII plot + corner table, m = 1..4
//	curves -m 1,2,3,4,8 -points 500 -csv > fig1.csv
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"loadmax/internal/obs"
	"loadmax/internal/ratio"
	"loadmax/internal/report"
	"loadmax/internal/svgplot"
	"loadmax/internal/textplot"
)

func main() {
	var (
		mList  = flag.String("m", "1,2,3,4", "comma-separated machine counts")
		points = flag.Int("points", 200, "samples per curve (log-spaced over [min-eps, 1])")
		minEps = flag.Float64("min-eps", 0.01, "left edge of the slack grid")
		csv    = flag.Bool("csv", false, "emit CSV instead of plot + tables")
		svg    = flag.String("svg", "", "also write the figure as SVG to this file")

		pprofPfx = flag.String("pprof", "", "capture profiles of the recursion solves to <prefix>.cpu.pprof and <prefix>.heap.pprof")
	)
	flag.Parse()

	if *pprofPfx != "" {
		stop, err := obs.StartProfiling(*pprofPfx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "curves:", err)
			os.Exit(1)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "curves:", err)
			}
			fmt.Fprintf(os.Stderr, "[profiles written to %s.cpu.pprof and %s.heap.pprof]\n", *pprofPfx, *pprofPfx)
		}()
	}

	var machines []int
	for _, s := range strings.Split(*mList, ",") {
		m, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || m < 1 {
			fmt.Fprintf(os.Stderr, "curves: bad machine count %q\n", s)
			os.Exit(1)
		}
		machines = append(machines, m)
	}

	grid := make([]float64, *points)
	for i := range grid {
		frac := float64(i) / float64(*points-1)
		grid[i] = math.Pow(10, math.Log10(*minEps)*(1-frac))
	}

	cols := []string{"eps"}
	for _, m := range machines {
		cols = append(cols, fmt.Sprintf("c(eps,%d)", m))
	}
	table := report.NewTable("c(eps, m)", cols...)
	plot := &textplot.Plot{
		Title:  "Figure 1: tight competitive ratios (log-x)",
		XLabel: "slack eps", YLabel: "competitive ratio",
		LogX: true, Height: 24, Width: 90,
	}
	series := make([][]float64, len(machines))
	for mi, m := range machines {
		series[mi] = make([]float64, len(grid))
		for i, e := range grid {
			p, err := ratio.Compute(e, m)
			if err != nil {
				fmt.Fprintln(os.Stderr, "curves:", err)
				os.Exit(1)
			}
			series[mi][i] = p.C
		}
		plot.AddSeries(fmt.Sprintf("m=%d", m), grid, series[mi])
		for _, corner := range ratio.Corners(m) {
			if c, err := ratio.Compute(corner, m); err == nil {
				plot.Mark(corner, c.C)
			}
		}
	}
	for i, e := range grid {
		row := []interface{}{e}
		for mi := range machines {
			row = append(row, series[mi][i])
		}
		table.Addf(row...)
	}

	if *svg != "" {
		sp := &svgplot.Plot{
			Title: "Figure 1: tight competitive ratios", XLabel: "slack eps",
			YLabel: "competitive ratio", LogX: true,
		}
		for mi, m := range machines {
			sp.AddSeries(fmt.Sprintf("m=%d", m), grid, series[mi])
			for _, corner := range ratio.Corners(m) {
				if c, err := ratio.Compute(corner, m); err == nil {
					sp.Mark(corner, c.C)
				}
			}
		}
		if err := os.WriteFile(*svg, []byte(sp.Render()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "curves:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[svg written to %s]\n", *svg)
	}

	if *csv {
		if err := table.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "curves:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(plot.Render())
	fmt.Println()
	corners := report.NewTable("phase transitions (the circles of Fig. 1)",
		"m", "k", "eps_{k,m}", "c at corner")
	for _, m := range machines {
		for k, corner := range ratio.Corners(m) {
			p, _ := ratio.Compute(corner, m)
			corners.Addf(m, k+1, corner, p.C)
		}
	}
	corners.WriteText(os.Stdout)
}
