// Command genload emits synthetic job instances — the workload families
// the experiments use — as CSV (default) or JSON, for feeding into
// cmd/loadmax or external tooling.
//
// Usage:
//
//	genload -gen bimodal -n 500 -eps 0.1 -m 4 > jobs.csv
//	genload -gen diurnal -n 1000 -json > jobs.json
//	genload -list
package main

import (
	"flag"
	"fmt"
	"os"

	"loadmax/internal/workload"
)

func main() {
	var (
		gen    = flag.String("gen", "poisson", "workload family")
		n      = flag.Int("n", 100, "instance size")
		eps    = flag.Float64("eps", 0.1, "guaranteed minimum slack")
		m      = flag.Int("m", 1, "machine count the offered load targets")
		load   = flag.Float64("load", 1.5, "offered load per machine")
		spread = flag.Float64("slack-spread", -1, "extra uniform slack width (-1 = default 1, 0 = tight)")
		seed   = flag.Int64("seed", 1, "RNG seed")
		asJSON = flag.Bool("json", false, "emit JSON instead of CSV")
		list   = flag.Bool("list", false, "list available families and exit")
	)
	flag.Parse()

	if *list {
		for _, f := range workload.Families {
			fmt.Println(f.Name)
		}
		return
	}
	fam, ok := workload.ByName(*gen)
	if !ok {
		fmt.Fprintf(os.Stderr, "genload: unknown family %q (try -list)\n", *gen)
		os.Exit(1)
	}
	inst := fam.Gen(workload.Spec{
		N: *n, Eps: *eps, M: *m, Load: *load, SlackSpread: *spread, Seed: *seed,
	})
	var err error
	if *asJSON {
		err = inst.WriteJSON(os.Stdout)
	} else {
		err = inst.WriteCSV(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "genload:", err)
		os.Exit(1)
	}
}
