package loadmax

// Guards the ISSUE-1 observability contract: the decision-trace hooks in
// core.Threshold must be free on the hot path when disabled. The
// benchmarks quantify the enabled/disabled gap; the AllocsPerRun test
// hard-fails the build if a disabled-hooks Submit ever allocates.
import (
	"testing"

	"loadmax/internal/core"
	"loadmax/internal/obs"
	"loadmax/internal/workload"
)

func benchSubmit(b *testing.B, th *core.Threshold) {
	b.Helper()
	inst := workload.Poisson(workload.Spec{N: 10000, Eps: 0.1, M: 8, Seed: 42})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Submit(inst[i%len(inst)])
		if (i+1)%len(inst) == 0 {
			b.StopTimer()
			th.Reset()
			b.StartTimer()
		}
	}
}

// BenchmarkSubmitTraceDisabled is the seed hot path with the (nil)
// tracing hooks compiled in: it must report 0 allocs/op, matching
// BenchmarkSubmit before the observability layer existed.
func BenchmarkSubmitTraceDisabled(b *testing.B) {
	th, err := core.New(8, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	benchSubmit(b, th)
}

// BenchmarkSubmitTraceMemory prices full tracing into a memory sink:
// every Submit builds and copies a DecisionEvent.
func BenchmarkSubmitTraceMemory(b *testing.B) {
	th, err := core.New(8, 0.1, core.WithTracer(&obs.MemorySink{Cap: 1}))
	if err != nil {
		b.Fatal(err)
	}
	benchSubmit(b, th)
}

// BenchmarkSubmitTraceMemoryRetained prices tracing into an unbounded
// MemorySink that keeps every event — the configuration where the
// arena-backed Loads/Terms copies (ISSUE 3) matter most. The sink is
// Reset alongside the scheduler on each wrap so the arenas are reused
// rather than regrown, which is exactly the steady state a long-lived
// traced service sees.
func BenchmarkSubmitTraceMemoryRetained(b *testing.B) {
	sink := &obs.MemorySink{}
	th, err := core.New(8, 0.1, core.WithTracer(sink))
	if err != nil {
		b.Fatal(err)
	}
	inst := workload.Poisson(workload.Spec{N: 10000, Eps: 0.1, M: 8, Seed: 42})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Submit(inst[i%len(inst)])
		if (i+1)%len(inst) == 0 {
			b.StopTimer()
			th.Reset()
			sink.Reset()
			b.StartTimer()
		}
	}
}

// BenchmarkSubmitTraceSampled prices 1-in-1000 sampling — the
// production-scale configuration for million-job runs.
func BenchmarkSubmitTraceSampled(b *testing.B) {
	th, err := core.New(8, 0.1, core.WithTracer(obs.NewSamplingSink(1000, &obs.MemorySink{Cap: 1})))
	if err != nil {
		b.Fatal(err)
	}
	benchSubmit(b, th)
}

// TestSubmitDisabledHooksZeroAlloc asserts — not just reports — that a
// Submit with no tracer attached performs zero heap allocations, on
// both the accept and the threshold-reject branch.
func TestSubmitDisabledHooksZeroAlloc(t *testing.T) {
	inst := workload.Poisson(workload.Spec{N: 1000, Eps: 0.1, M: 8, Seed: 42})
	th, err := core.New(8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		if i == len(inst) {
			th.Reset() // allocation-free; restart the release clock
			i = 0
		}
		th.Submit(inst[i])
		i++
	})
	if allocs != 0 {
		t.Fatalf("disabled-hooks Submit allocates %.1f times per call, want 0", allocs)
	}
}

// TestSubmitMetricsRegistryNilIsFree does the same for the nil-registry
// path of the run-level metrics: sim-side recording must not leak
// allocations into an unobserved hot loop. (The registry itself is only
// touched per run, not per submission, but the nil-safety contract is
// cheap to pin here.)
func TestSubmitMetricsRegistryNilIsFree(t *testing.T) {
	var reg *obs.Registry
	allocs := testing.AllocsPerRun(1000, func() {
		reg.Counter("x").Inc()
		reg.Gauge("y").Set(1)
	})
	if allocs != 0 {
		t.Fatalf("nil-registry metric calls allocate %.1f times, want 0", allocs)
	}
}
