package loadmax_test

import (
	"fmt"

	"loadmax"
)

// The scheduler decides each job immediately and irrevocably.
func ExampleNewScheduler() {
	sched, _ := loadmax.NewScheduler(2, 0.5)
	jobs := []loadmax.Job{
		{ID: 1, Release: 0, Proc: 2, Deadline: 3},   // tight, machines empty
		{ID: 2, Release: 0, Proc: 2, Deadline: 3},   // second machine
		{ID: 3, Release: 0, Proc: 1, Deadline: 1.6}, // threshold rejects
	}
	for _, j := range jobs {
		d := sched.Submit(j)
		if d.Accepted {
			fmt.Printf("J%d → machine %d at t=%g\n", j.ID, d.Machine, d.Start)
		} else {
			fmt.Printf("J%d → rejected\n", j.ID)
		}
	}
	// Output:
	// J1 → machine 0 at t=0
	// J2 → machine 1 at t=0
	// J3 → rejected
}

// Ratio evaluates the tight competitive-ratio function c(ε,m); at
// ε = 0.5, m = 2 Equation (1) gives 3/2 + 1/ε = 3.5.
func ExampleRatio() {
	c, _ := loadmax.Ratio(0.5, 2)
	fmt.Printf("c(0.5, 2) = %.2f\n", c)
	// Output:
	// c(0.5, 2) = 3.50
}

// PhaseCorners returns the slack values where the ratio function changes
// phase — the circles of Figure 1. For m = 2 the only corner is 2/7.
func ExamplePhaseCorners() {
	corners := loadmax.PhaseCorners(2)
	fmt.Printf("eps_{1,2} = %.6f\n", corners[0])
	// Output:
	// eps_{1,2} = 0.285714
}

// Adversary plays the Section-3 lower-bound game; against Algorithm 1 it
// realizes exactly c(ε,m).
func ExampleAdversary() {
	sched, _ := loadmax.NewScheduler(2, 0.5)
	out, _ := loadmax.Adversary(sched, 0.5, 0)
	c, _ := loadmax.Ratio(0.5, 2)
	fmt.Printf("realized/c = %.4f\n", out.Ratio/c)
	// Output:
	// realized/c = 1.0000
}
