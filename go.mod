module loadmax

go 1.22
