#!/bin/sh
# obs_smoke.sh — end-to-end smoke of the loadmaxd ops plane (ISSUE 6).
#
# Builds loadmaxd + loadmaxctl, starts a traced daemon with the admin
# listener on a free port, then drives the plane the way an operator
# would: poll /healthz until live, scrape /metrics and assert every
# required series is present, sanity-check /statusz JSON, exercise the
# loadmaxctl subcommands, and finally SIGTERM the daemon and require a
# clean drain + exit. Everything is asserted on structure, never on
# timing, so the gate is CI-stable.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/obs-smoke.XXXXXX")
DAEMON_PID=""

cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
    echo "obs-smoke: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$WORK/daemon.log" >&2 || true
    exit 1
}

echo "obs-smoke: building loadmaxd + loadmaxctl"
$GO build -o "$WORK/" ./cmd/loadmaxd ./cmd/loadmaxctl

# Port 0 would be ideal but the admin address must be known to the CLI,
# so derive a port from the PID (range 20000-29999) and let the bind
# fail loudly if it is taken — rerunning picks a new shell PID.
ADMIN_PORT=$((20000 + $$ % 10000))
ADMIN="127.0.0.1:$ADMIN_PORT"

echo "obs-smoke: starting daemon (admin on $ADMIN)"
"$WORK/loadmaxd" -addr 127.0.0.1:0 -admin "$ADMIN" -spans \
    -slow-threshold 1ms -heartbeat 1s >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

# Poll the drain-aware health endpoint until the plane answers.
i=0
until "$WORK/loadmaxctl" -admin "$ADMIN" health >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 50 ] || kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup"
    [ "$i" -lt 50 ] || fail "admin plane never became healthy"
    sleep 0.2
done
echo "obs-smoke: /healthz live after $i polls"

# The startup banner is the first operator touchpoint; require it.
grep -q "loadmaxd: starting" "$WORK/daemon.log" || fail "startup banner missing"
grep -q "tracing on" "$WORK/daemon.log" || fail "banner does not report tracing on"

# /metrics must expose the serving-stack series the dashboards key on.
"$WORK/loadmaxctl" -admin "$ADMIN" metrics >"$WORK/metrics.txt"
for series in serve_shards netserve_connections netserve_inflight \
    serve_backpressure_total netserve_rx_frames_total \
    span_finished_total span_total_seconds; do
    grep -q "^$series" "$WORK/metrics.txt" || fail "/metrics missing series $series"
done
grep -q "^# TYPE serve_shards gauge" "$WORK/metrics.txt" || fail "/metrics missing TYPE metadata"
echo "obs-smoke: /metrics exposes all required series"

# /statusz must carry the process + service identity an operator greps.
"$WORK/loadmaxctl" -admin "$ADMIN" status >"$WORK/statusz.json"
for field in '"server": "loadmaxd"' '"go_version"' '"uptime_seconds"' \
    '"draining": false' '"shards"' '"spans"'; do
    grep -q "$field" "$WORK/statusz.json" || fail "/statusz missing $field"
done
echo "obs-smoke: /statusz carries build + service status"

# The span commands answer even when rings are empty (no traffic yet).
"$WORK/loadmaxctl" -admin "$ADMIN" slow >/dev/null || fail "loadmaxctl slow failed"
"$WORK/loadmaxctl" -admin "$ADMIN" spans >/dev/null || fail "loadmaxctl spans failed"

echo "obs-smoke: draining daemon (SIGTERM)"
kill -TERM "$DAEMON_PID"
i=0
while kill -0 "$DAEMON_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || fail "daemon did not exit within 10s of SIGTERM"
    sleep 0.2
done
wait "$DAEMON_PID" 2>/dev/null || fail "daemon exited non-zero"
DAEMON_PID=""
grep -q "draining" "$WORK/daemon.log" || fail "drain log line missing"

echo "obs-smoke: PASS"
